"""Saving and loading geodab indexes (v1 JSON and v2 columnar snapshots).

Two on-disk formats coexist:

* **v1** (legacy, single-node only) stores the configuration and the
  winnowing selections of every indexed trajectory as one JSON file —
  postings and bitmaps are *re-derived* on load, so loading costs a full
  rebuild.
* **v2** (the default) is a snapshot *directory* that persists the
  columnar index state directly: a ``manifest.json``, one binary
  postings blob per shard (the :meth:`~repro.core.postings.PostingsStore.save`
  layout — memory-mappable, so a multi-GB postings file warms up in
  milliseconds), the serialized per-slot term bitmaps, and (single-node
  only) the winnowing selections for motif discovery.  The arena slot
  layout — including tombstones and the free list — round-trips exactly,
  so persisted postings arrays stay valid without renumbering and
  delete/re-add churn keeps recycling across a save/load cycle.  Both
  :class:`~repro.core.index.GeodabIndex` and
  :class:`~repro.cluster.cluster.ShardedGeodabIndex` are supported; the
  sharding spec rides along in the manifest.

Normalizers are arbitrary callables and are *not* persisted; pass the
same normalizer to :func:`load_index` that the original index was built
with (queries must be normalized identically).  Raw trajectory points
are not persisted either, so ``points_of`` is unavailable after a load.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from .arena import TOMBSTONE, TOMBSTONE_CARD
from .config import GeodabConfig
from .fingerprint import FingerprintSet
from .index import GeodabIndex, Normalizer
from .postings import PostingsStore
from .winnowing import Selection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cluster import ShardedGeodabIndex

__all__ = [
    "save_index",
    "load_index",
    "attach_shard_postings",
    "publish_snapshot",
    "resolve_snapshot",
    "prune_snapshots",
]

#: Format identifier written into every file.
FORMAT = "repro-geodab-index"
#: Legacy JSON-of-selections format (single-node only, rebuilds on load).
VERSION_V1 = 1
#: Columnar snapshot directory format (loads without rebuild).
VERSION_V2 = 2
#: Default version written by :func:`save_index`.
VERSION = VERSION_V2

#: Name of the v2 manifest inside a snapshot directory.
MANIFEST_NAME = "manifest.json"
#: Pointer file naming the live snapshot inside a snapshot directory.
CURRENT_POINTER = "CURRENT"

_BITMAPS_NAME = "bitmaps.bin"
_SELECTIONS_NAME = "selections.bin"
_BITMAPS_MAGIC = b"GDBMAP01"
_SELECTIONS_MAGIC = b"GDSEL001"


def _check_string_ids(trajectory_ids: Iterable[Hashable]) -> None:
    """Reject non-string identifiers before any byte is written.

    Both formats name trajectories in JSON, which cannot round-trip
    arbitrary hashables faithfully; validating the whole index up front
    means a failed save never leaves partial output behind.
    """
    for trajectory_id in trajectory_ids:
        if not isinstance(trajectory_id, str):
            raise ValueError(
                "only string trajectory ids can be persisted; got "
                f"{trajectory_id!r}"
            )


# ----------------------------------------------------------------------
# v1: JSON of winnowing selections (legacy, single-node)
# ----------------------------------------------------------------------


def _save_v1(index: GeodabIndex, path: Path) -> None:
    _check_string_ids(index._fingerprint_sets)
    documents = [
        {
            "id": trajectory_id,
            "selections": [
                [s.fingerprint, s.position]
                for s in fingerprint_set.selections
            ],
        }
        for trajectory_id, fingerprint_set in index._fingerprint_sets.items()
    ]
    payload = {
        "format": FORMAT,
        "version": VERSION_V1,
        "config": asdict(index.config),
        "documents": documents,
    }
    # Write-then-rename: a crash mid-dump never corrupts an existing file.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _load_v1(payload: dict, path: Path, normalizer: Normalizer | None) -> GeodabIndex:
    config = GeodabConfig(**payload["config"])
    index = GeodabIndex(config, normalizer=normalizer)
    wide = not config.fits_in_32_bits
    for document in payload["documents"]:
        selections = [
            Selection(int(value), int(position))
            for value, position in document["selections"]
        ]
        fingerprint_set = FingerprintSet.from_selections(selections, wide=wide)
        index._restore_document(document["id"], fingerprint_set)
    return index


# ----------------------------------------------------------------------
# v2: columnar snapshot directory
# ----------------------------------------------------------------------


def _write_bitmaps(
    path: Path, slot_ids: list[Hashable], bitmaps: list
) -> None:
    """Per-slot term bitmaps: ``u32 size + blob`` records in slot order.

    Tombstoned slots write a zero-length record; their bitmap is an
    empty sentinel the loader can reconstruct from the config width.
    """
    with open(path, "wb") as handle:
        handle.write(_BITMAPS_MAGIC)
        handle.write(struct.pack("<Q", len(slot_ids)))
        for slot_id, bitmap in zip(slot_ids, bitmaps):
            if slot_id is TOMBSTONE:
                handle.write(struct.pack("<I", 0))
                continue
            blob = bitmap.serialize()
            handle.write(struct.pack("<I", len(blob)))
            handle.write(blob)


def _read_bitmaps(path: Path, wide: bool, expected: int) -> list:
    empty_type = Roaring64Map if wide else RoaringBitmap
    # One read + zero-copy memoryview slices: per-record handle.read
    # calls would dominate warm start on indexes with many documents.
    blob = memoryview(path.read_bytes())
    if bytes(blob[:8]) != _BITMAPS_MAGIC:
        raise ValueError(f"{path} is not a snapshot bitmap file")
    try:
        (count,) = struct.unpack_from("<Q", blob, 8)
        if count != expected:
            raise ValueError(
                f"{path}: {count} bitmap records, manifest has "
                f"{expected} slots"
            )
        bitmaps = []
        offset = 16
        for _ in range(count):
            (size,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            if size == 0:
                bitmaps.append(empty_type())
            else:
                bitmaps.append(
                    empty_type.deserialize(blob[offset:offset + size])
                )
                offset += size
    except struct.error as exc:
        # Truncated records surface as struct.error deep inside the
        # bitmap deserializers; normalize so every snapshot-corruption
        # path raises ValueError like the postings blob loader.
        raise ValueError(f"{path}: truncated bitmap file") from exc
    return bitmaps


def _write_selections(
    path: Path, live_sets: list[FingerprintSet]
) -> None:
    """Winnowing selections of every live slot, in slot order.

    Persisted so a loaded single-node index still serves motif discovery
    (``fingerprint_set()``) without re-winnowing anything.  Columnar
    layout — all per-document counts, then all ``(value, position)``
    pairs concatenated — so loading is two ``np.frombuffer`` calls
    instead of one read per document.
    """
    counts = np.fromiter(
        (len(fs.selections) for fs in live_sets),
        dtype="<u4",
        count=len(live_sets),
    )
    total = int(counts.sum()) if len(live_sets) else 0
    pairs = np.empty((total, 2), dtype="<u8")
    at = 0
    for fingerprint_set in live_sets:
        for selection in fingerprint_set.selections:
            pairs[at, 0] = selection.fingerprint
            pairs[at, 1] = selection.position
            at += 1
    with open(path, "wb") as handle:
        handle.write(_SELECTIONS_MAGIC)
        handle.write(struct.pack("<Q", len(live_sets)))
        handle.write(counts.tobytes())
        handle.write(pairs.tobytes())


def _read_selections(path: Path, expected: int) -> list[list[Selection]]:
    blob = memoryview(path.read_bytes())
    if bytes(blob[:8]) != _SELECTIONS_MAGIC:
        raise ValueError(f"{path} is not a snapshot selections file")
    try:
        (count,) = struct.unpack_from("<Q", blob, 8)
    except struct.error as exc:
        raise ValueError(f"{path}: truncated selections file") from exc
    if count != expected:
        raise ValueError(
            f"{path}: {count} selection records, expected {expected}"
        )
    counts = np.frombuffer(blob, dtype="<u4", count=count, offset=16)
    pairs_offset = 16 + 4 * count
    total = int(counts.sum()) if count else 0
    pairs = np.frombuffer(
        blob, dtype="<u8", count=2 * total, offset=pairs_offset
    ).reshape(total, 2)
    out = []
    start = 0
    for n in counts.tolist():
        out.append(
            [
                Selection(int(value), int(position))
                for value, position in pairs[start:start + n].tolist()
            ]
        )
        start += n
    return out


def _postings_name(shard_id: int) -> str:
    return f"postings-{shard_id:05d}.bin"


def _save_v2(index: "GeodabIndex | ShardedGeodabIndex", path: Path) -> None:
    from ..cluster.cluster import ShardedGeodabIndex

    sharded = isinstance(index, ShardedGeodabIndex)
    arena = index._arena
    _check_string_ids(arena.id_to_internal)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a snapshot directory")

    # Stage everything in a sibling temp directory and swap at the end.
    # Writing into an existing snapshot in place would truncate blobs
    # that (a) a crash could leave paired with the *old* manifest — a
    # loadable but torn snapshot — and (b) a live index may be serving
    # as memory-mapped views; replacing whole files keeps mapped pages
    # valid through the old inodes.
    stage = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir(parents=True)
    try:
        slot_ids = list(arena.ids)
        if sharded:
            bitmaps = index._bitmaps
            postings_files = []
            for shard in index.shards:
                name = _postings_name(shard.shard_id)
                shard.postings.save(stage / name)
                postings_files.append(name)
        else:
            bitmaps = index._term_sets
            name = _postings_name(0)
            index._postings.save(stage / name)
            postings_files = [name]
        _write_bitmaps(stage / _BITMAPS_NAME, slot_ids, bitmaps)
        if not sharded:
            live_sets = [
                index._fingerprint_sets[slot_id]
                for slot_id in slot_ids
                if slot_id is not TOMBSTONE
            ]
            _write_selections(stage / _SELECTIONS_NAME, live_sets)

        manifest: dict = {
            "format": FORMAT,
            "version": VERSION_V2,
            "kind": "sharded" if sharded else "single",
            "config": asdict(index.config),
            "slots": [
                None if slot_id is TOMBSTONE else slot_id
                for slot_id in slot_ids
            ],
            "postings_files": postings_files,
        }
        if sharded:
            manifest["sharding"] = asdict(index.sharding)
        # The manifest is written last: its presence marks the staged
        # snapshot complete.
        (stage / MANIFEST_NAME).write_text(
            json.dumps(manifest), encoding="utf-8"
        )
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    # Swap: a crash before the rename leaves the old snapshot intact; a
    # crash between the two steps leaves no manifest at ``path``, which
    # resolve_snapshot/load_index treat as "no snapshot" — either way a
    # torn save is never loadable.
    if path.exists():
        shutil.rmtree(path)
    os.rename(stage, path)


def _load_v2(
    path: Path, normalizer: Normalizer | None, mmap_mode: str | None
) -> "GeodabIndex | ShardedGeodabIndex":
    from ..cluster.cluster import ShardedGeodabIndex
    from ..cluster.sharding import ShardingConfig

    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} has no {MANIFEST_NAME}: not a v2 snapshot")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index snapshot")
    if manifest.get("version") != VERSION_V2:
        raise ValueError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    config = GeodabConfig(**manifest["config"])
    wide = not config.fits_in_32_bits
    slot_ids: list[Hashable] = [
        TOMBSTONE if slot is None else slot for slot in manifest["slots"]
    ]
    bitmaps = _read_bitmaps(path / _BITMAPS_NAME, wide, len(slot_ids))
    postings_files = manifest["postings_files"]
    # The scoring engine's cardinality column is validate-rebuilt from
    # the deserialized bitmaps (|T| is a container-count sum, so this is
    # O(slots) cheap) rather than persisted — exact by construction, and
    # pre-PR-5 snapshots warm-start onto the fast path with no format
    # change.
    cardinalities = [
        TOMBSTONE_CARD if slot_id is TOMBSTONE else len(bitmap)
        for slot_id, bitmap in zip(slot_ids, bitmaps)
    ]

    if manifest["kind"] == "sharded":
        sharding = ShardingConfig(**manifest["sharding"])
        if len(postings_files) != sharding.num_shards:
            raise ValueError(
                f"{path}: {len(postings_files)} postings files for "
                f"{sharding.num_shards} shards"
            )
        sharded = ShardedGeodabIndex(config, sharding, normalizer=normalizer)
        sharded._arena.restore(
            slot_ids, (bitmaps, [None] * len(slot_ids)), cardinalities
        )
        for shard, name in zip(sharded.shards, postings_files):
            shard.postings = PostingsStore.load(path / name, mmap_mode)
        return sharded

    if manifest["kind"] != "single":
        raise ValueError(f"unknown snapshot kind {manifest['kind']!r}")
    if len(postings_files) != 1:
        raise ValueError(
            f"{path}: single-node snapshot needs exactly one postings file"
        )
    index = GeodabIndex(config, normalizer=normalizer)
    index._arena.restore(
        slot_ids, (bitmaps, [None] * len(slot_ids)), cardinalities
    )
    index._postings = PostingsStore.load(path / postings_files[0], mmap_mode)
    live = [
        (slot, slot_id)
        for slot, slot_id in enumerate(slot_ids)
        if slot_id is not TOMBSTONE
    ]
    selection_lists = _read_selections(path / _SELECTIONS_NAME, len(live))
    for (slot, slot_id), selections in zip(live, selection_lists):
        # Share the bitmap object with the arena column, exactly like a
        # live index built through add().
        index._fingerprint_sets[slot_id] = FingerprintSet(
            tuple(selections), bitmaps[slot]
        )
    return index


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------


def save_index(
    index: "GeodabIndex | ShardedGeodabIndex",
    path: str | Path,
    *,
    version: int = VERSION,
) -> None:
    """Write an index to ``path``.

    ``version=2`` (default) writes a columnar snapshot *directory* and
    accepts both :class:`GeodabIndex` and
    :class:`~repro.cluster.cluster.ShardedGeodabIndex`.  ``version=1``
    writes the legacy single-node JSON file.  Either way, all trajectory
    ids are validated up front (only strings persist faithfully), so a
    failed save never does partial work.
    """
    from ..cluster.cluster import ShardedGeodabIndex

    path = Path(path)
    if version == VERSION_V2:
        _save_v2(index, path)
    elif version == VERSION_V1:
        if isinstance(index, ShardedGeodabIndex):
            raise ValueError(
                "v1 JSON cannot persist a sharded index; use version=2"
            )
        _save_v1(index, path)
    else:
        raise ValueError(f"unsupported save version {version!r}")


def load_index(
    path: str | Path,
    normalizer: Normalizer | None = None,
    *,
    mmap_mode: str | None = None,
) -> "GeodabIndex | ShardedGeodabIndex":
    """Read an index written by :func:`save_index` (either version).

    A directory loads as a v2 snapshot: postings come straight off disk
    (memory-mapped when ``mmap_mode`` is e.g. ``"r"``), bitmaps
    deserialize, and nothing is re-derived.  A file loads as v1 JSON and
    rebuilds postings from the stored selections; ``mmap_mode`` does not
    apply.  The returned index answers queries identically to the
    original (given the same ``normalizer``).
    """
    path = Path(path)
    if path.is_dir():
        return _load_v2(path, normalizer, mmap_mode)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index file")
    if payload.get("version") != VERSION_V1:
        raise ValueError(
            f"unsupported index version {payload.get('version')!r}"
        )
    return _load_v1(payload, path, normalizer)


def attach_shard_postings(
    path: str | Path, mmap_mode: str | None = "r"
) -> dict[int, PostingsStore]:
    """Attach only the per-shard postings blobs of a v2 snapshot.

    The worker-process transport's loader: a shard-serving worker needs
    the postings arrays (to answer ``hits``/``postings_map``) but none
    of the bitmap or arena state — ranking happens at the coordinator.
    Skipping the bitmap deserialization makes worker attach O(shards)
    metadata work plus lazy page-ins, so respawning a worker against a
    multi-GB snapshot is near-instant.

    Returns ``{shard_id: PostingsStore}`` — one entry per shard for a
    sharded snapshot, ``{0: store}`` for a single-node one.  Raises
    ``ValueError`` on a missing/torn/foreign snapshot, like
    :func:`load_index`.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} has no {MANIFEST_NAME}: not a v2 snapshot")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index snapshot")
    if manifest.get("version") != VERSION_V2:
        raise ValueError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    postings_files = manifest["postings_files"]
    if manifest["kind"] == "sharded":
        expected = manifest["sharding"]["num_shards"]
        if len(postings_files) != expected:
            raise ValueError(
                f"{path}: {len(postings_files)} postings files for "
                f"{expected} shards"
            )
    elif manifest["kind"] == "single":
        if len(postings_files) != 1:
            raise ValueError(
                f"{path}: single-node snapshot needs exactly one postings file"
            )
    else:
        raise ValueError(f"unknown snapshot kind {manifest['kind']!r}")
    # Files are written in shard order (see _save_v2), matching how
    # _load_v2 zips them back onto shards.
    return {
        shard_id: PostingsStore.load(path / name, mmap_mode)
        for shard_id, name in enumerate(postings_files)
    }


def publish_snapshot(
    index: "GeodabIndex | ShardedGeodabIndex",
    directory: str | Path,
    tag: str,
) -> Path:
    """Save a v2 snapshot under ``directory`` and mark it current.

    The snapshot lands in ``directory/snapshot-<tag>`` and the
    ``CURRENT`` pointer file is updated atomically (write + rename), so
    a reader — :func:`resolve_snapshot` at warm start — either sees the
    previous complete snapshot or the new one, never a torn state.
    """
    if not tag or "/" in tag or os.sep in tag or tag in (".", ".."):
        raise ValueError(f"invalid snapshot tag {tag!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / f"snapshot-{tag}"
    save_index(index, target, version=VERSION_V2)
    tmp = directory / (CURRENT_POINTER + ".tmp")
    tmp.write_text(target.name + "\n", encoding="utf-8")
    os.replace(tmp, directory / CURRENT_POINTER)
    return target


def resolve_snapshot(directory: str | Path) -> Path | None:
    """Path of the current snapshot under ``directory``, if any.

    Returns ``None`` when the directory has no ``CURRENT`` pointer or
    the pointed-at snapshot is missing its manifest (torn or deleted).
    """
    directory = Path(directory)
    pointer = directory / CURRENT_POINTER
    if not pointer.is_file():
        return None
    name = pointer.read_text(encoding="utf-8").strip()
    if not name or "/" in name or os.sep in name:
        return None
    target = directory / name
    if not (target / MANIFEST_NAME).is_file():
        return None
    return target


def prune_snapshots(directory: str | Path, keep: int = 3) -> list[Path]:
    """Delete superseded ``snapshot-*`` directories, newest ``keep`` kept.

    Every :func:`publish_snapshot` lands in a fresh uniquely-tagged
    directory, so a long-running service accumulates one snapshot per
    ``POST /admin/snapshot`` forever unless something collects them.
    This keeps the ``keep`` most recent *complete* snapshots (publish
    order, by directory mtime with the name as tie-break) plus —
    unconditionally — the one the ``CURRENT`` pointer names, and
    deletes the rest.  Torn directories (no manifest: a crash between
    staging and pointer flip) are unloadable garbage and are always
    removed.  Returns the deleted paths.

    Safe against a process still serving a pruned snapshot via
    ``np.memmap`` on POSIX: unlinking only drops the directory entries,
    and the mapped pages stay valid until unmapped.
    """
    if keep < 1:
        raise ValueError("keep must be positive")
    directory = Path(directory)
    if not directory.is_dir():
        return []
    current = resolve_snapshot(directory)
    complete: list[Path] = []
    removed: list[Path] = []

    def try_remove(path: Path) -> None:
        # Report only what actually left the disk: a directory rmtree
        # could not fully delete (permissions, open handles on
        # non-POSIX filesystems) must not inflate the GC count the
        # admin endpoint surfaces — it will be retried next prune.
        shutil.rmtree(path, ignore_errors=True)
        if not path.exists():
            removed.append(path)

    for path in directory.iterdir():
        if not path.is_dir() or not path.name.startswith("snapshot-"):
            continue
        if (path / MANIFEST_NAME).is_file():
            complete.append(path)
        else:
            try_remove(path)
    complete.sort(key=lambda p: (p.stat().st_mtime, p.name), reverse=True)
    survivors = set(complete[:keep])
    if current is not None:
        survivors.add(current)
    for path in complete[keep:]:
        if path in survivors:
            continue
        try_remove(path)
    return removed
