"""Saving and loading geodab indexes (v1 JSON, v2/v3 columnar snapshots).

Three on-disk formats coexist:

* **v1** (legacy, single-node only) stores the configuration and the
  winnowing selections of every indexed trajectory as one JSON file —
  postings and bitmaps are *re-derived* on load, so loading costs a full
  rebuild.
* **v2** is a snapshot *directory* that persists the columnar index
  state directly: a ``manifest.json``, one binary postings blob per
  shard (the :meth:`~repro.core.postings.PostingsStore.save` layout —
  memory-mappable, so a multi-GB postings file warms up in
  milliseconds), the serialized per-slot term bitmaps, and (single-node
  only) the winnowing selections for motif discovery.  The arena slot
  layout — including tombstones and the free list — round-trips exactly,
  so persisted postings arrays stay valid without renumbering and
  delete/re-add churn keeps recycling across a save/load cycle.  Both
  :class:`~repro.core.index.GeodabIndex` and
  :class:`~repro.cluster.cluster.ShardedGeodabIndex` are supported; the
  sharding spec rides along in the manifest.
* **v3** (the default) extends v2 with the fingerprint-variant registry
  — one postings blob set and one bitmap section *per registered
  variant* (the default variant keeps the v2 file names, so
  variant-unaware readers still see a coherent snapshot) — and an
  optional ``points.bin`` holding the raw trajectory points of a
  ``store_points=True`` index, so exact DTW/Fréchet re-ranking survives
  a warm start.  v2 snapshots load as a single-variant registry.

Normalizers are arbitrary callables and are *not* persisted; pass the
same normalizer to :func:`load_index` that the original index was built
with (queries must be normalized identically).
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..geo.point import Point
from .arena import TOMBSTONE, TOMBSTONE_CARD
from .config import GeodabConfig
from .fingerprint import FingerprintSet
from .index import GeodabIndex, Normalizer
from .postings import PostingsStore
from .registry import DEFAULT_VARIANT, FingerprintRegistry
from .winnowing import Selection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cluster import ShardedGeodabIndex

__all__ = [
    "save_index",
    "load_index",
    "attach_shard_postings",
    "attach_variant_postings",
    "publish_snapshot",
    "resolve_snapshot",
    "prune_snapshots",
]

#: Format identifier written into every file.
FORMAT = "repro-geodab-index"
#: Legacy JSON-of-selections format (single-node only, rebuilds on load).
VERSION_V1 = 1
#: Columnar snapshot directory format (loads without rebuild).
VERSION_V2 = 2
#: v2 plus the fingerprint-variant registry and optional raw points.
VERSION_V3 = 3
#: Default version written by :func:`save_index`.
VERSION = VERSION_V3

#: Name of the v2/v3 manifest inside a snapshot directory.
MANIFEST_NAME = "manifest.json"
#: Pointer file naming the live snapshot inside a snapshot directory.
CURRENT_POINTER = "CURRENT"

_BITMAPS_NAME = "bitmaps.bin"
_SELECTIONS_NAME = "selections.bin"
_POINTS_NAME = "points.bin"
_BITMAPS_MAGIC = b"GDBMAP01"
_SELECTIONS_MAGIC = b"GDSEL001"
_POINTS_MAGIC = b"GDPTS001"


def _check_string_ids(trajectory_ids: Iterable[Hashable]) -> None:
    """Reject non-string identifiers before any byte is written.

    Both formats name trajectories in JSON, which cannot round-trip
    arbitrary hashables faithfully; validating the whole index up front
    means a failed save never leaves partial output behind.
    """
    for trajectory_id in trajectory_ids:
        if not isinstance(trajectory_id, str):
            raise ValueError(
                "only string trajectory ids can be persisted; got "
                f"{trajectory_id!r}"
            )


# ----------------------------------------------------------------------
# v1: JSON of winnowing selections (legacy, single-node)
# ----------------------------------------------------------------------


def _save_v1(index: GeodabIndex, path: Path) -> None:
    _check_string_ids(index._fingerprint_sets)
    documents = [
        {
            "id": trajectory_id,
            "selections": [
                [s.fingerprint, s.position]
                for s in fingerprint_set.selections
            ],
        }
        for trajectory_id, fingerprint_set in index._fingerprint_sets.items()
    ]
    payload = {
        "format": FORMAT,
        "version": VERSION_V1,
        "config": asdict(index.config),
        "documents": documents,
    }
    # Write-then-rename: a crash mid-dump never corrupts an existing file.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _load_v1(payload: dict, path: Path, normalizer: Normalizer | None) -> GeodabIndex:
    config = GeodabConfig(**payload["config"])
    index = GeodabIndex(config, normalizer=normalizer)
    wide = not config.fits_in_32_bits
    for document in payload["documents"]:
        selections = [
            Selection(int(value), int(position))
            for value, position in document["selections"]
        ]
        fingerprint_set = FingerprintSet.from_selections(selections, wide=wide)
        index._restore_document(document["id"], fingerprint_set)
    return index


# ----------------------------------------------------------------------
# v2: columnar snapshot directory
# ----------------------------------------------------------------------


def _write_bitmaps(
    path: Path, slot_ids: list[Hashable], bitmaps: list
) -> None:
    """Per-slot term bitmaps: ``u32 size + blob`` records in slot order.

    Tombstoned slots write a zero-length record; their bitmap is an
    empty sentinel the loader can reconstruct from the config width.
    """
    with open(path, "wb") as handle:
        handle.write(_BITMAPS_MAGIC)
        handle.write(struct.pack("<Q", len(slot_ids)))
        for slot_id, bitmap in zip(slot_ids, bitmaps):
            if slot_id is TOMBSTONE:
                handle.write(struct.pack("<I", 0))
                continue
            blob = bitmap.serialize()
            handle.write(struct.pack("<I", len(blob)))
            handle.write(blob)


def _read_bitmaps(path: Path, wide: bool, expected: int) -> list:
    empty_type = Roaring64Map if wide else RoaringBitmap
    # One read + zero-copy memoryview slices: per-record handle.read
    # calls would dominate warm start on indexes with many documents.
    blob = memoryview(path.read_bytes())
    if bytes(blob[:8]) != _BITMAPS_MAGIC:
        raise ValueError(f"{path} is not a snapshot bitmap file")
    try:
        (count,) = struct.unpack_from("<Q", blob, 8)
        if count != expected:
            raise ValueError(
                f"{path}: {count} bitmap records, manifest has "
                f"{expected} slots"
            )
        bitmaps = []
        offset = 16
        for _ in range(count):
            (size,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            if size == 0:
                bitmaps.append(empty_type())
            else:
                bitmaps.append(
                    empty_type.deserialize(blob[offset:offset + size])
                )
                offset += size
    except struct.error as exc:
        # Truncated records surface as struct.error deep inside the
        # bitmap deserializers; normalize so every snapshot-corruption
        # path raises ValueError like the postings blob loader.
        raise ValueError(f"{path}: truncated bitmap file") from exc
    return bitmaps


def _write_selections(
    path: Path, live_sets: list[FingerprintSet]
) -> None:
    """Winnowing selections of every live slot, in slot order.

    Persisted so a loaded single-node index still serves motif discovery
    (``fingerprint_set()``) without re-winnowing anything.  Columnar
    layout — all per-document counts, then all ``(value, position)``
    pairs concatenated — so loading is two ``np.frombuffer`` calls
    instead of one read per document.
    """
    counts = np.fromiter(
        (len(fs.selections) for fs in live_sets),
        dtype="<u4",
        count=len(live_sets),
    )
    total = int(counts.sum()) if len(live_sets) else 0
    pairs = np.empty((total, 2), dtype="<u8")
    at = 0
    for fingerprint_set in live_sets:
        for selection in fingerprint_set.selections:
            pairs[at, 0] = selection.fingerprint
            pairs[at, 1] = selection.position
            at += 1
    with open(path, "wb") as handle:
        handle.write(_SELECTIONS_MAGIC)
        handle.write(struct.pack("<Q", len(live_sets)))
        handle.write(counts.tobytes())
        handle.write(pairs.tobytes())


def _read_selections(path: Path, expected: int) -> list[list[Selection]]:
    blob = memoryview(path.read_bytes())
    if bytes(blob[:8]) != _SELECTIONS_MAGIC:
        raise ValueError(f"{path} is not a snapshot selections file")
    try:
        (count,) = struct.unpack_from("<Q", blob, 8)
    except struct.error as exc:
        raise ValueError(f"{path}: truncated selections file") from exc
    if count != expected:
        raise ValueError(
            f"{path}: {count} selection records, expected {expected}"
        )
    counts = np.frombuffer(blob, dtype="<u4", count=count, offset=16)
    pairs_offset = 16 + 4 * count
    total = int(counts.sum()) if count else 0
    pairs = np.frombuffer(
        blob, dtype="<u8", count=2 * total, offset=pairs_offset
    ).reshape(total, 2)
    out = []
    start = 0
    for n in counts.tolist():
        out.append(
            [
                Selection(int(value), int(position))
                for value, position in pairs[start:start + n].tolist()
            ]
        )
        start += n
    return out


def _write_points(
    path: Path, slot_ids: list[Hashable], points_column: list
) -> None:
    """Raw trajectory points of every slot, columnar (v3 only).

    Layout: magic, ``u64`` slot count, one ``i64`` per slot (the point
    count, ``-1`` for slots without stored points — tombstones or
    documents inserted without raw points), then all ``f64`` lat/lon
    pairs concatenated in slot order.  Loading is two ``np.frombuffer``
    calls, mirroring the selections blob.
    """
    counts = np.empty(len(slot_ids), dtype="<i8")
    for slot, (slot_id, points) in enumerate(zip(slot_ids, points_column)):
        if slot_id is TOMBSTONE or points is None:
            counts[slot] = -1
        else:
            counts[slot] = len(points)
    total = int(counts[counts > 0].sum()) if len(slot_ids) else 0
    coords = np.empty((total, 2), dtype="<f8")
    at = 0
    for slot_id, points in zip(slot_ids, points_column):
        if slot_id is TOMBSTONE or points is None:
            continue
        for point in points:
            coords[at, 0] = point.lat
            coords[at, 1] = point.lon
            at += 1
    with open(path, "wb") as handle:
        handle.write(_POINTS_MAGIC)
        handle.write(struct.pack("<Q", len(slot_ids)))
        handle.write(counts.tobytes())
        handle.write(coords.tobytes())


def _read_points(path: Path, expected: int) -> list:
    blob = memoryview(path.read_bytes())
    if bytes(blob[:8]) != _POINTS_MAGIC:
        raise ValueError(f"{path} is not a snapshot points file")
    try:
        (count,) = struct.unpack_from("<Q", blob, 8)
    except struct.error as exc:
        raise ValueError(f"{path}: truncated points file") from exc
    if count != expected:
        raise ValueError(f"{path}: {count} point records, expected {expected}")
    counts = np.frombuffer(blob, dtype="<i8", count=count, offset=16)
    coords_offset = 16 + 8 * count
    total = int(counts[counts > 0].sum()) if count else 0
    coords = np.frombuffer(
        blob, dtype="<f8", count=2 * total, offset=coords_offset
    ).reshape(total, 2)
    out: list = []
    start = 0
    for n in counts.tolist():
        if n < 0:
            out.append(None)
            continue
        out.append(
            [Point(lat, lon) for lat, lon in coords[start:start + n].tolist()]
        )
        start += n
    return out


def _postings_name(shard_id: int) -> str:
    return f"postings-{shard_id:05d}.bin"


def _variant_bitmaps_name(variant: str) -> str:
    """Bitmap blob name: the default variant keeps the v2 file name."""
    if variant == DEFAULT_VARIANT:
        return _BITMAPS_NAME
    return f"bitmaps-{variant}.bin"


def _variant_postings_name(variant: str, shard_id: int) -> str:
    """Postings blob name: the default variant keeps the v2 file names."""
    if variant == DEFAULT_VARIANT:
        return _postings_name(shard_id)
    return f"postings-{variant}-{shard_id:05d}.bin"


def _save_v2(index: "GeodabIndex | ShardedGeodabIndex", path: Path) -> None:
    from ..cluster.cluster import ShardedGeodabIndex

    sharded = isinstance(index, ShardedGeodabIndex)
    if len(index.registry) > 1:
        raise ValueError(
            "v2 snapshots cannot persist a multi-variant registry; "
            "use version=3"
        )
    arena = index._arena
    _check_string_ids(arena.id_to_internal)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a snapshot directory")

    # Stage everything in a sibling temp directory and swap at the end.
    # Writing into an existing snapshot in place would truncate blobs
    # that (a) a crash could leave paired with the *old* manifest — a
    # loadable but torn snapshot — and (b) a live index may be serving
    # as memory-mapped views; replacing whole files keeps mapped pages
    # valid through the old inodes.
    stage = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir(parents=True)
    try:
        slot_ids = list(arena.ids)
        if sharded:
            bitmaps = index._bitmaps
            postings_files = []
            for shard in index.shards:
                name = _postings_name(shard.shard_id)
                shard.postings.save(stage / name)
                postings_files.append(name)
        else:
            bitmaps = index._term_sets
            name = _postings_name(0)
            index._postings.save(stage / name)
            postings_files = [name]
        _write_bitmaps(stage / _BITMAPS_NAME, slot_ids, bitmaps)
        if not sharded:
            live_sets = [
                index._fingerprint_sets[slot_id]
                for slot_id in slot_ids
                if slot_id is not TOMBSTONE
            ]
            _write_selections(stage / _SELECTIONS_NAME, live_sets)

        manifest: dict = {
            "format": FORMAT,
            "version": VERSION_V2,
            "kind": "sharded" if sharded else "single",
            "config": asdict(index.config),
            "slots": [
                None if slot_id is TOMBSTONE else slot_id
                for slot_id in slot_ids
            ],
            "postings_files": postings_files,
        }
        if sharded:
            manifest["sharding"] = asdict(index.sharding)
        # The manifest is written last: its presence marks the staged
        # snapshot complete.
        (stage / MANIFEST_NAME).write_text(
            json.dumps(manifest), encoding="utf-8"
        )
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    # Swap: a crash before the rename leaves the old snapshot intact; a
    # crash between the two steps leaves no manifest at ``path``, which
    # resolve_snapshot/load_index treat as "no snapshot" — either way a
    # torn save is never loadable.
    if path.exists():
        shutil.rmtree(path)
    os.rename(stage, path)


def _load_v2(
    path: Path, normalizer: Normalizer | None, mmap_mode: str | None
) -> "GeodabIndex | ShardedGeodabIndex":
    from ..cluster.cluster import ShardedGeodabIndex
    from ..cluster.sharding import ShardingConfig

    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} has no {MANIFEST_NAME}: not a v2 snapshot")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index snapshot")
    if manifest.get("version") != VERSION_V2:
        raise ValueError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    config = GeodabConfig(**manifest["config"])
    wide = not config.fits_in_32_bits
    slot_ids: list[Hashable] = [
        TOMBSTONE if slot is None else slot for slot in manifest["slots"]
    ]
    bitmaps = _read_bitmaps(path / _BITMAPS_NAME, wide, len(slot_ids))
    postings_files = manifest["postings_files"]
    # The scoring engine's cardinality column is validate-rebuilt from
    # the deserialized bitmaps (|T| is a container-count sum, so this is
    # O(slots) cheap) rather than persisted — exact by construction, and
    # pre-PR-5 snapshots warm-start onto the fast path with no format
    # change.
    cardinalities = [
        TOMBSTONE_CARD if slot_id is TOMBSTONE else len(bitmap)
        for slot_id, bitmap in zip(slot_ids, bitmaps)
    ]

    if manifest["kind"] == "sharded":
        sharding = ShardingConfig(**manifest["sharding"])
        if len(postings_files) != sharding.num_shards:
            raise ValueError(
                f"{path}: {len(postings_files)} postings files for "
                f"{sharding.num_shards} shards"
            )
        sharded = ShardedGeodabIndex(config, sharding, normalizer=normalizer)
        sharded._arena.restore(
            slot_ids, (bitmaps, [None] * len(slot_ids)), cardinalities
        )
        for shard, name in zip(sharded.shards, postings_files):
            shard.attach(
                DEFAULT_VARIANT, PostingsStore.load(path / name, mmap_mode)
            )
        return sharded

    if manifest["kind"] != "single":
        raise ValueError(f"unknown snapshot kind {manifest['kind']!r}")
    if len(postings_files) != 1:
        raise ValueError(
            f"{path}: single-node snapshot needs exactly one postings file"
        )
    index = GeodabIndex(config, normalizer=normalizer)
    index._arena.restore(
        slot_ids, (bitmaps, [None] * len(slot_ids)), cardinalities
    )
    index._attach_postings(
        DEFAULT_VARIANT, PostingsStore.load(path / postings_files[0], mmap_mode)
    )
    live = [
        (slot, slot_id)
        for slot, slot_id in enumerate(slot_ids)
        if slot_id is not TOMBSTONE
    ]
    selection_lists = _read_selections(path / _SELECTIONS_NAME, len(live))
    for (slot, slot_id), selections in zip(live, selection_lists):
        # Share the bitmap object with the arena column, exactly like a
        # live index built through add().
        index._fingerprint_sets[slot_id] = FingerprintSet(
            tuple(selections), bitmaps[slot]
        )
    return index


# ----------------------------------------------------------------------
# v3: v2 plus the variant registry and optional raw points
# ----------------------------------------------------------------------


def _save_v3(index: "GeodabIndex | ShardedGeodabIndex", path: Path) -> None:
    from ..cluster.cluster import ShardedGeodabIndex

    sharded = isinstance(index, ShardedGeodabIndex)
    arena = index._arena
    names = index.registry.names
    _check_string_ids(arena.id_to_internal)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a snapshot directory")

    # Same staging discipline as v2: everything lands in a sibling temp
    # directory, the manifest is written last, and the final rename is
    # the commit point.
    stage = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir(parents=True)
    try:
        slot_ids = list(arena.ids)
        store_points = bool(getattr(index, "store_points", False))
        variant_files: dict[str, dict] = {}
        for name in names:
            if sharded:
                bitmaps = index._variant_bitmaps[name]
                postings_files = []
                for shard in index.shards:
                    file_name = _variant_postings_name(name, shard.shard_id)
                    shard.store(name).save(stage / file_name)
                    postings_files.append(file_name)
            else:
                bitmaps = index._variant_bitmaps[name]
                file_name = _variant_postings_name(name, 0)
                index._variant_store(name).save(stage / file_name)
                postings_files = [file_name]
            bitmaps_name = _variant_bitmaps_name(name)
            _write_bitmaps(stage / bitmaps_name, slot_ids, bitmaps)
            variant_files[name] = {
                "bitmaps": bitmaps_name,
                "postings": postings_files,
            }
        if not sharded:
            live_sets = [
                index._fingerprint_sets[slot_id]
                for slot_id in slot_ids
                if slot_id is not TOMBSTONE
            ]
            _write_selections(stage / _SELECTIONS_NAME, live_sets)
        points_file = None
        if store_points:
            points_file = _POINTS_NAME
            _write_points(stage / _POINTS_NAME, slot_ids, index._points)

        manifest: dict = {
            "format": FORMAT,
            "version": VERSION_V3,
            "kind": "sharded" if sharded else "single",
            "config": asdict(index.config),
            "slots": [
                None if slot_id is TOMBSTONE else slot_id
                for slot_id in slot_ids
            ],
            # The default variant's blobs under the v2 keys, so variant-
            # unaware readers (worker attach on a mixed fleet) still see
            # a coherent single-variant snapshot.
            "postings_files": variant_files[DEFAULT_VARIANT]["postings"],
            "variants": index.registry.describe(),
            "variant_files": variant_files,
            "store_points": store_points,
            "points_file": points_file,
        }
        if sharded:
            manifest["sharding"] = asdict(index.sharding)
        (stage / MANIFEST_NAME).write_text(
            json.dumps(manifest), encoding="utf-8"
        )
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    if path.exists():
        shutil.rmtree(path)
    os.rename(stage, path)


def _load_v3(
    path: Path, normalizer: Normalizer | None, mmap_mode: str | None
) -> "GeodabIndex | ShardedGeodabIndex":
    from ..cluster.cluster import ShardedGeodabIndex
    from ..cluster.sharding import ShardingConfig

    manifest = _read_manifest(path)
    if manifest["version"] != VERSION_V3:
        raise ValueError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    config = GeodabConfig(**manifest["config"])
    registry = FingerprintRegistry.from_manifest(
        manifest.get("variants"), config
    )
    extras = [registry.spec(name) for name in registry.extra_names]
    wide = not config.fits_in_32_bits
    slot_ids: list[Hashable] = [
        TOMBSTONE if slot is None else slot for slot in manifest["slots"]
    ]
    variant_files = manifest["variant_files"]
    missing = [name for name in registry.names if name not in variant_files]
    if missing:
        raise ValueError(f"{path}: no blobs for variant(s) {missing!r}")
    variant_bitmaps: dict[str, list] = {}
    variant_cards: dict[str, list[int]] = {}
    for name in registry.names:
        bitmaps = _read_bitmaps(
            path / variant_files[name]["bitmaps"], wide, len(slot_ids)
        )
        variant_bitmaps[name] = bitmaps
        variant_cards[name] = [
            TOMBSTONE_CARD if slot_id is TOMBSTONE else len(bitmap)
            for slot_id, bitmap in zip(slot_ids, bitmaps)
        ]
    store_points = bool(manifest.get("store_points", False))
    if store_points:
        points_column = _read_points(
            path / manifest["points_file"], len(slot_ids)
        )
    else:
        points_column = [None] * len(slot_ids)
    default_bitmaps = variant_bitmaps[DEFAULT_VARIANT]
    extra_bitmap_columns = [
        variant_bitmaps[name] for name in registry.extra_names
    ]
    columns = (default_bitmaps, points_column, *extra_bitmap_columns)
    card_rows = [variant_cards[name] for name in registry.names]
    cardinalities = card_rows[0] if len(card_rows) == 1 else tuple(card_rows)

    if manifest["kind"] == "sharded":
        sharding = ShardingConfig(**manifest["sharding"])
        sharded = ShardedGeodabIndex(
            config,
            sharding,
            normalizer=normalizer,
            store_points=store_points,
            variants=extras,
        )
        sharded._arena.restore(slot_ids, columns, cardinalities)
        for name in registry.names:
            postings_files = variant_files[name]["postings"]
            if len(postings_files) != sharding.num_shards:
                raise ValueError(
                    f"{path}: {len(postings_files)} postings files for "
                    f"{sharding.num_shards} shards (variant {name!r})"
                )
            for shard, file_name in zip(sharded.shards, postings_files):
                shard.attach(
                    name, PostingsStore.load(path / file_name, mmap_mode)
                )
        return sharded

    if manifest["kind"] != "single":
        raise ValueError(f"unknown snapshot kind {manifest['kind']!r}")
    index = GeodabIndex(
        config,
        normalizer=normalizer,
        store_points=store_points,
        variants=extras,
    )
    index._arena.restore(slot_ids, columns, cardinalities)
    for name in registry.names:
        postings_files = variant_files[name]["postings"]
        if len(postings_files) != 1:
            raise ValueError(
                f"{path}: single-node snapshot needs exactly one postings "
                f"file (variant {name!r})"
            )
        index._attach_postings(
            name, PostingsStore.load(path / postings_files[0], mmap_mode)
        )
    live = [
        (slot, slot_id)
        for slot, slot_id in enumerate(slot_ids)
        if slot_id is not TOMBSTONE
    ]
    selection_lists = _read_selections(path / _SELECTIONS_NAME, len(live))
    for (slot, slot_id), selections in zip(live, selection_lists):
        index._fingerprint_sets[slot_id] = FingerprintSet(
            tuple(selections), default_bitmaps[slot]
        )
    return index


def _read_manifest(path: Path) -> dict:
    """Parse and format-check a snapshot directory's manifest."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} has no {MANIFEST_NAME}: not a snapshot")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index snapshot")
    return manifest


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------


def save_index(
    index: "GeodabIndex | ShardedGeodabIndex",
    path: str | Path,
    *,
    version: int = VERSION,
) -> None:
    """Write an index to ``path``.

    ``version=3`` (default) writes a columnar snapshot *directory* —
    per-variant postings blobs and bitmap sections plus, when the index
    stores raw trajectories, a ``points.bin`` so exact re-ranking
    survives a warm start.  ``version=2`` writes the previous snapshot
    layout (single-variant only, no raw points); ``version=1`` writes
    the legacy single-node JSON file.  Either way, all trajectory ids
    are validated up front (only strings persist faithfully), so a
    failed save never does partial work.  Both accept
    :class:`GeodabIndex` and
    :class:`~repro.cluster.cluster.ShardedGeodabIndex`.
    """
    from ..cluster.cluster import ShardedGeodabIndex

    path = Path(path)
    if version == VERSION_V3:
        _save_v3(index, path)
    elif version == VERSION_V2:
        _save_v2(index, path)
    elif version == VERSION_V1:
        if isinstance(index, ShardedGeodabIndex):
            raise ValueError(
                "v1 JSON cannot persist a sharded index; use version=2"
            )
        _save_v1(index, path)
    else:
        raise ValueError(f"unsupported save version {version!r}")


def load_index(
    path: str | Path,
    normalizer: Normalizer | None = None,
    *,
    mmap_mode: str | None = None,
) -> "GeodabIndex | ShardedGeodabIndex":
    """Read an index written by :func:`save_index` (either version).

    A directory loads as a v2/v3 snapshot: postings come straight off
    disk (memory-mapped when ``mmap_mode`` is e.g. ``"r"``), bitmaps
    deserialize, and nothing is re-derived.  A v2 snapshot loads as a
    single-variant registry; a v3 snapshot restores every registered
    variant and (when saved with ``store_points=True``) the raw
    trajectory points, so exact queries work immediately after a warm
    start.  A file loads as v1 JSON and rebuilds postings from the
    stored selections; ``mmap_mode`` does not apply.  The returned index
    answers queries identically to the original (given the same
    ``normalizer``).
    """
    path = Path(path)
    if path.is_dir():
        manifest = _read_manifest(path)
        if manifest.get("version") == VERSION_V3:
            return _load_v3(path, normalizer, mmap_mode)
        return _load_v2(path, normalizer, mmap_mode)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index file")
    if payload.get("version") != VERSION_V1:
        raise ValueError(
            f"unsupported index version {payload.get('version')!r}"
        )
    return _load_v1(payload, path, normalizer)


def attach_shard_postings(
    path: str | Path, mmap_mode: str | None = "r"
) -> dict[int, PostingsStore]:
    """Attach only the per-shard postings blobs of a v2 snapshot.

    The worker-process transport's loader: a shard-serving worker needs
    the postings arrays (to answer ``hits``/``postings_map``) but none
    of the bitmap or arena state — ranking happens at the coordinator.
    Skipping the bitmap deserialization makes worker attach O(shards)
    metadata work plus lazy page-ins, so respawning a worker against a
    multi-GB snapshot is near-instant.

    Returns ``{shard_id: PostingsStore}`` — one entry per shard for a
    sharded snapshot, ``{0: store}`` for a single-node one.  A v3
    snapshot attaches its *default* variant here (the default keeps the
    v2 blob names); use :func:`attach_variant_postings` for all of them.
    Raises ``ValueError`` on a missing/torn/foreign snapshot, like
    :func:`load_index`.
    """
    return attach_variant_postings(path, mmap_mode)[DEFAULT_VARIANT]


def attach_variant_postings(
    path: str | Path, mmap_mode: str | None = "r"
) -> dict[str, dict[int, PostingsStore]]:
    """Attach every variant's per-shard postings blobs of a snapshot.

    The worker-process transport's loader: a shard-serving worker needs
    the postings arrays (to answer ``hits``/``postings_map``) but none
    of the bitmap or arena state — ranking happens at the coordinator.
    Skipping the bitmap deserialization makes worker attach O(shards x
    variants) metadata work plus lazy page-ins, so respawning a worker
    against a multi-GB snapshot is near-instant.

    Returns ``{variant: {shard_id: PostingsStore}}``; a v2 snapshot
    yields the single ``default`` entry.  Raises ``ValueError`` on a
    missing/torn/foreign snapshot, like :func:`load_index`.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    version = manifest.get("version")
    if version not in (VERSION_V2, VERSION_V3):
        raise ValueError(f"unsupported snapshot version {version!r}")
    if version == VERSION_V3:
        variant_files = {
            name: files["postings"]
            for name, files in manifest["variant_files"].items()
        }
    else:
        variant_files = {DEFAULT_VARIANT: manifest["postings_files"]}
    if manifest["kind"] == "sharded":
        expected = manifest["sharding"]["num_shards"]
    elif manifest["kind"] == "single":
        expected = 1
    else:
        raise ValueError(f"unknown snapshot kind {manifest['kind']!r}")
    for name, postings_files in variant_files.items():
        if len(postings_files) != expected:
            raise ValueError(
                f"{path}: {len(postings_files)} postings files for "
                f"{expected} shards (variant {name!r})"
            )
    # Files are written in shard order (see _save_v2/_save_v3), matching
    # how the loaders zip them back onto shards.
    return {
        name: {
            shard_id: PostingsStore.load(path / file_name, mmap_mode)
            for shard_id, file_name in enumerate(postings_files)
        }
        for name, postings_files in variant_files.items()
    }


def publish_snapshot(
    index: "GeodabIndex | ShardedGeodabIndex",
    directory: str | Path,
    tag: str,
) -> Path:
    """Save a snapshot under ``directory`` and mark it current.

    The snapshot lands in ``directory/snapshot-<tag>`` and the
    ``CURRENT`` pointer file is updated atomically (write + rename), so
    a reader — :func:`resolve_snapshot` at warm start — either sees the
    previous complete snapshot or the new one, never a torn state.
    """
    if not tag or "/" in tag or os.sep in tag or tag in (".", ".."):
        raise ValueError(f"invalid snapshot tag {tag!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / f"snapshot-{tag}"
    save_index(index, target, version=VERSION)
    tmp = directory / (CURRENT_POINTER + ".tmp")
    tmp.write_text(target.name + "\n", encoding="utf-8")
    os.replace(tmp, directory / CURRENT_POINTER)
    return target


def resolve_snapshot(directory: str | Path) -> Path | None:
    """Path of the current snapshot under ``directory``, if any.

    Returns ``None`` when the directory has no ``CURRENT`` pointer or
    the pointed-at snapshot is missing its manifest (torn or deleted).
    """
    directory = Path(directory)
    pointer = directory / CURRENT_POINTER
    if not pointer.is_file():
        return None
    name = pointer.read_text(encoding="utf-8").strip()
    if not name or "/" in name or os.sep in name:
        return None
    target = directory / name
    if not (target / MANIFEST_NAME).is_file():
        return None
    return target


def prune_snapshots(directory: str | Path, keep: int = 3) -> list[Path]:
    """Delete superseded ``snapshot-*`` directories, newest ``keep`` kept.

    Every :func:`publish_snapshot` lands in a fresh uniquely-tagged
    directory, so a long-running service accumulates one snapshot per
    ``POST /admin/snapshot`` forever unless something collects them.
    This keeps the ``keep`` most recent *complete* snapshots (publish
    order, by directory mtime with the name as tie-break) plus —
    unconditionally — the one the ``CURRENT`` pointer names, and
    deletes the rest.  Torn directories (no manifest: a crash between
    staging and pointer flip) are unloadable garbage and are always
    removed.  Returns the deleted paths.

    Safe against a process still serving a pruned snapshot via
    ``np.memmap`` on POSIX: unlinking only drops the directory entries,
    and the mapped pages stay valid until unmapped.
    """
    if keep < 1:
        raise ValueError("keep must be positive")
    directory = Path(directory)
    if not directory.is_dir():
        return []
    current = resolve_snapshot(directory)
    complete: list[Path] = []
    removed: list[Path] = []

    def try_remove(path: Path) -> None:
        # Report only what actually left the disk: a directory rmtree
        # could not fully delete (permissions, open handles on
        # non-POSIX filesystems) must not inflate the GC count the
        # admin endpoint surfaces — it will be retried next prune.
        shutil.rmtree(path, ignore_errors=True)
        if not path.exists():
            removed.append(path)

    for path in directory.iterdir():
        if not path.is_dir() or not path.name.startswith("snapshot-"):
            continue
        if (path / MANIFEST_NAME).is_file():
            complete.append(path)
        else:
            try_remove(path)
    complete.sort(key=lambda p: (p.stat().st_mtime, p.name), reverse=True)
    survivors = set(complete[:keep])
    if current is not None:
        survivors.add(current)
    for path in complete[keep:]:
        if path in survivors:
            continue
        try_remove(path)
    return removed
