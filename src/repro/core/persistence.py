"""Saving and loading geodab indexes.

A :class:`~repro.core.index.GeodabIndex` is fully determined by its
configuration and the winnowing selections of every indexed trajectory —
postings and bitmaps are derivable — so the on-disk format stores exactly
that, as JSON.  Normalizers are arbitrary callables and are *not*
persisted; pass the same normalizer to :func:`load_index` that the
original index was built with (queries must be normalized identically).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from .config import GeodabConfig
from .fingerprint import FingerprintSet
from .index import GeodabIndex, Normalizer
from .winnowing import Selection

__all__ = ["save_index", "load_index"]

#: Format identifier written into every file.
FORMAT = "repro-geodab-index"
VERSION = 1


def save_index(index: GeodabIndex, path: str | Path) -> None:
    """Write an index to ``path`` (JSON).

    Raises ``ValueError`` for indexes holding trajectories with
    non-string identifiers, which JSON cannot round-trip faithfully.
    """
    documents = []
    for trajectory_id, fingerprint_set in index._fingerprint_sets.items():
        if not isinstance(trajectory_id, str):
            raise ValueError(
                "only string trajectory ids can be persisted; got "
                f"{trajectory_id!r}"
            )
        documents.append(
            {
                "id": trajectory_id,
                "selections": [
                    [s.fingerprint, s.position]
                    for s in fingerprint_set.selections
                ],
            }
        )
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "config": asdict(index.config),
        "documents": documents,
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_index(
    path: str | Path, normalizer: Normalizer | None = None
) -> GeodabIndex:
    """Read an index written by :func:`save_index`.

    The returned index answers queries identically to the original
    (given the same ``normalizer``); raw trajectory points are not
    persisted, so ``points_of`` is unavailable.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != FORMAT:
        raise ValueError(f"{path} is not a geodab index file")
    if payload.get("version") != VERSION:
        raise ValueError(
            f"unsupported index version {payload.get('version')!r}"
        )
    config = GeodabConfig(**payload["config"])
    index = GeodabIndex(config, normalizer=normalizer)
    wide = not config.fits_in_32_bits
    for document in payload["documents"]:
        selections = [
            Selection(int(value), int(position))
            for value, position in document["selections"]
        ]
        fingerprint_set = FingerprintSet.from_selections(selections, wide=wide)
        index._restore_document(document["id"], fingerprint_set)
    return index
