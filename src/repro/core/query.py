"""Prepared-query and fan-out types shared by every index backend.

PR 1 gave the sharded index a ``prepare_query`` / ``query_prepared``
decomposition so the serving tier could fan shard lookups out over a
worker pool.  This module hosts the types of that decomposition so the
single-node :class:`~repro.core.index.GeodabIndex` can expose the *same*
surface — a single-node index is simply a cluster with one logical shard
(shard 0) — and the service/executor layers serve either backend through
one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from .fingerprint import FingerprintSet

__all__ = [
    "NO_TRACE",
    "FanoutStats",
    "MatchCounts",
    "PreparedQuery",
    "QUERY_METRICS",
    "QUERY_MODES",
    "QuerySpec",
    "TraceSink",
]

#: Valid ``QuerySpec.mode`` values: ``approx`` is the fingerprint
#: Jaccard ranking (the paper's method); the ``exact_*`` modes add the
#: tiered re-rank stage (:mod:`repro.core.rerank`) on top of it.
QUERY_MODES = ("approx", "exact_knn", "exact_range")

#: Valid ``QuerySpec.metric`` values.  ``jaccard`` is the only metric of
#: ``approx`` mode; the exact modes re-rank with ``dtw`` or ``frechet``.
QUERY_METRICS = ("jaccard", "dtw", "frechet")


def _require_positive_int(name: str, value: object) -> None:
    """Reject non-ints (bool included — it is an int subclass) and <= 0."""
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(f"'{name}' must be a positive integer")


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """Everything one similarity query asks for, validated once.

    The structured replacement for the flat ``(limit, max_distance)``
    kwargs that could not express mode, metric, or overfetch:

    * ``mode`` — ``approx`` (fingerprint Jaccard, the default),
      ``exact_knn`` (Jaccard retrieve, exact re-rank, top ``limit``), or
      ``exact_range`` (exact re-rank, results within ``max_distance``
      meters).
    * ``metric`` — ``jaccard`` for ``approx``; ``dtw`` or ``frechet``
      for the exact modes.
    * ``limit`` — result cap.  Required for ``exact_knn`` (it is the
      ``k``); optional elsewhere.
    * ``max_distance`` — for ``approx`` a Jaccard cutoff in ``[0, 1]``
      (default 1.0); for ``exact_range`` a radius in *meters*
      (required); meaningless for ``exact_knn``.
    * ``overfetch`` — exact modes collect ``limit * overfetch`` Jaccard
      candidates before the re-rank (the filter/refine trade-off).
    * ``band`` — optional Sakoe-Chiba half-width for ``dtw``.  The
      effective band is widened to at least ``|len(p) - len(q)|`` so an
      alignment always exists; ``None`` means unbanded (exact DTW).
    * ``variant`` — named fingerprint variant for the retrieval tier
      (see :mod:`repro.core.registry`).  ``default`` is the index's
      base parameterization (so existing clients see zero change);
      ``auto`` picks the densest registered variant — what exact modes
      want, since tier-1 recall tracks fingerprint density.  Unregistered
      names are rejected at execution time with
      :exc:`~repro.core.registry.UnknownVariant`.
    * ``plan`` — candidate-collection strategy for the retrieval tier.
      ``auto`` (default) lets the WAND-style planner
      (:mod:`repro.core.planner`) stop materializing postings once the
      top-k can no longer change; ``off`` forces exhaustive collection.
      Answers are bit-identical either way — ``off`` exists as the test
      oracle and bench baseline, and as an escape hatch.
    """

    mode: str = "approx"
    metric: str = "jaccard"
    limit: int | None = None
    max_distance: float | None = None
    overfetch: int = 4
    band: int | None = None
    variant: str = "default"
    plan: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in QUERY_MODES:
            raise ValueError(
                f"'mode' must be one of {'/'.join(QUERY_MODES)}, "
                f"got {self.mode!r}"
            )
        if self.metric not in QUERY_METRICS:
            raise ValueError(
                f"'metric' must be one of {'/'.join(QUERY_METRICS)}, "
                f"got {self.metric!r}"
            )
        if self.mode == "approx":
            if self.metric != "jaccard":
                raise ValueError("approx mode supports only the jaccard metric")
            if self.max_distance is None:
                object.__setattr__(self, "max_distance", 1.0)
        elif self.metric == "jaccard":
            raise ValueError(f"{self.mode} mode needs 'metric' dtw or frechet")
        if self.limit is not None:
            _require_positive_int("limit", self.limit)
        if self.max_distance is not None:
            value = self.max_distance
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError("'max_distance' must be a number")
            object.__setattr__(self, "max_distance", float(value))
        if self.mode == "approx":
            assert self.max_distance is not None
            if not 0.0 <= self.max_distance <= 1.0:
                raise ValueError(
                    "'max_distance' must be in [0, 1] for approx mode"
                )
        if self.mode == "exact_knn":
            if self.limit is None:
                raise ValueError("exact_knn mode requires 'limit' (the k)")
            if self.max_distance is not None:
                raise ValueError(
                    "exact_knn mode takes no 'max_distance'; "
                    "use exact_range for radius queries"
                )
        if self.mode == "exact_range":
            if self.max_distance is None:
                raise ValueError(
                    "exact_range mode requires 'max_distance' (meters)"
                )
            if self.max_distance < 0:
                raise ValueError("'max_distance' must be non-negative meters")
        _require_positive_int("overfetch", self.overfetch)
        if self.band is not None:
            if isinstance(self.band, bool) or not isinstance(self.band, int):
                raise ValueError("'band' must be a non-negative integer")
            if self.band < 0:
                raise ValueError("'band' must be a non-negative integer")
            if self.metric != "dtw":
                raise ValueError("'band' applies only to the dtw metric")
        if not isinstance(self.variant, str) or not self.variant:
            raise ValueError("'variant' must be a non-empty string")
        if self.plan not in ("auto", "off"):
            raise ValueError(
                f"'plan' must be 'auto' or 'off', got {self.plan!r}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """Whether this query runs the exact re-rank stage."""
        return self.mode != "approx"

    @property
    def tier1_limit(self) -> int | None:
        """Candidate cap for the Jaccard retrieval tier.

        Exact modes overfetch so the re-rank has slack to reorder;
        ``exact_range`` without a ``limit`` keeps every candidate.
        """
        if not self.is_exact:
            return self.limit
        if self.limit is None:
            return None
        return self.limit * self.overfetch

    @property
    def tier1_max_distance(self) -> float:
        """Jaccard cutoff for the retrieval tier (exact modes: none)."""
        if self.is_exact:
            return 1.0
        assert self.max_distance is not None
        return self.max_distance

    def cache_key(self) -> tuple:
        """Every field that changes the answer, for result-cache keys.

        The serving tier's result cache must never serve one spec's
        answer for another — mode, metric, overfetch, and band all
        change what comes back for the same query terms.
        """
        return (
            self.mode,
            self.metric,
            self.limit,
            self.max_distance,
            self.overfetch,
            self.band,
            self.variant,
            # Planned and exhaustive collection answer identically, but
            # keeping the key spec-complete means a plan=off oracle run
            # can never be served a planned answer from cache (or vice
            # versa) — which benchmarks and bit-identity tests rely on.
            self.plan,
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    @classmethod
    def from_json(cls, payload: object) -> "QuerySpec":
        """Build a validated spec from a JSON object; raises ValueError.

        Unknown keys are rejected — a typoed field name silently
        falling back to its default would be a wrong answer, not a
        convenience.
        """
        if not isinstance(payload, dict):
            raise ValueError("'spec' must be a JSON object")
        known = {
            "mode", "metric", "limit", "max_distance", "overfetch",
            "band", "variant", "plan",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown spec field(s) {sorted(unknown)!r}; "
                f"valid fields: {sorted(known)!r}"
            )
        kwargs: dict = {}
        for key in ("mode", "metric", "variant", "plan"):
            if key in payload:
                value = payload[key]
                if not isinstance(value, str):
                    raise ValueError(f"'{key}' must be a string")
                kwargs[key] = value
        for key in ("limit", "max_distance", "band", "overfetch"):
            if key in payload and payload[key] is not None:
                kwargs[key] = payload[key]
        return cls(**kwargs)

    def to_json(self) -> dict:
        """JSON-ready representation (defaults elided where ``None``)."""
        payload: dict = {"mode": self.mode, "metric": self.metric}
        if self.limit is not None:
            payload["limit"] = self.limit
        if self.max_distance is not None:
            payload["max_distance"] = self.max_distance
        payload["overfetch"] = self.overfetch
        if self.band is not None:
            payload["band"] = self.band
        if self.variant != "default":
            payload["variant"] = self.variant
        if self.plan != "auto":
            payload["plan"] = self.plan
        return payload


class TraceSink(Protocol):
    """Where query stages report their timings.

    The protocol lives here — with the other types shared by every index
    backend — so the core fan-out code can be instrumented without a
    dependency on the serving tier; the real recorder is
    :class:`repro.service.tracing.Trace`.  Timestamps are whatever the
    sink's :meth:`now` returns (a monotonic clock on the real recorder,
    ``0.0`` on the null sink, a fake clock under test).

    ``stage`` records a top-level pipeline stage (``prepare`` /
    ``fanout`` / ``merge`` / ``rank``) — these aggregate into the
    per-stage latency histograms and, when the sink keeps detail, also
    become spans of the request's span tree.  ``event`` records
    detail-only child spans (per-shard contacts, cache probes) that are
    kept only when ``detail`` is true.  Both return a span id usable as
    a later span's ``parent``, or ``None`` when nothing was kept.
    """

    @property
    def detail(self) -> bool: ...

    def now(self) -> float: ...

    def stage(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None: ...

    def event(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None: ...


class _NullTrace:
    """The zero-cost sink: drops everything, never reads the clock."""

    __slots__ = ()

    @property
    def detail(self) -> bool:
        return False

    def now(self) -> float:
        return 0.0

    def stage(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        return None

    def event(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        return None


#: Shared null sink — the default ``trace`` argument throughout the
#: query path, so untraced execution allocates nothing.
NO_TRACE = _NullTrace()

#: Merged candidates of a query: parallel ``(internal_ids, counts)``
#: int64 arrays — every distinct internal id paired with the number of
#: query terms it shared.  Produced by
#: :func:`repro.core.postings.merge_hits` from per-shard hit streams.
MatchCounts = tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True, slots=True)
class PreparedQuery:
    """A query after fingerprinting and routing, before shard contact.

    Splitting preparation from execution lets the serving tier fan the
    per-shard lookups out over a worker pool (and batch the lookups of
    concurrent queries) while reusing exactly the routing and ranking of
    the sequential path.  ``plan`` maps shard id to the terms that shard
    must serve; a single-node index plans everything onto shard 0.

    ``variant`` names the *resolved* fingerprint variant the query was
    prepared under (``auto`` never reaches here): the fingerprint set,
    terms, and plan were all produced by that variant's pipeline, and
    execution must read that variant's postings and cardinalities.
    """

    fingerprint_set: FingerprintSet
    terms: tuple[int, ...]
    plan: dict[int, list[int]]
    variant: str = "default"

    @property
    def query_bitmap(self) -> RoaringBitmap | Roaring64Map:
        """Bitmap of the query's distinct terms (for Jaccard ranking)."""
        return self.fingerprint_set.bitmap


@dataclass(frozen=True, slots=True)
class FanoutStats:
    """Distribution work performed by one query (Section VI-E's concern).

    ``candidates`` counts merged candidates referencing *live* slots
    only, consistent with ``QueryStats.candidates`` on the single-node
    backend — tombstoned slots never count, so the numbers do not drift
    after removals.  ``pruned`` counts candidates the scoring engine's
    count-based minimum-overlap threshold eliminated before computing
    any distance (0 unless ``max_distance`` < 1; see
    :mod:`repro.core.scoring`).

    ``hedged`` and ``failed_shards`` account the serving tier's
    fault handling: how many shard contacts were hedged (a duplicate
    sent to a second backend because the first straggled) and how many
    shards contributed *nothing* — the query still answered from the
    surviving shards, flagged degraded rather than failing.

    ``terms_skipped`` / ``postings_skipped`` / ``postings_bytes_avoided``
    / ``collection_cut`` account the query planner's decisions
    (:mod:`repro.core.planner`): terms never merged into the hit stream
    (absent or cut), postings entries those terms held for trajectories
    outside the materialized candidate table, the same in bytes, and
    whether the top-k bound actually stopped collection.  All zero under
    exhaustive collection (``plan="off"`` or unplannable specs).
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    pruned: int = 0
    hedged: int = 0
    failed_shards: int = 0
    terms_skipped: int = 0
    postings_skipped: int = 0
    postings_bytes_avoided: int = 0
    collection_cut: bool = False

    @property
    def degraded(self) -> bool:
        """Whether any planned shard failed to contribute its partial."""
        return self.failed_shards > 0
