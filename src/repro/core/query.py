"""Prepared-query and fan-out types shared by every index backend.

PR 1 gave the sharded index a ``prepare_query`` / ``query_prepared``
decomposition so the serving tier could fan shard lookups out over a
worker pool.  This module hosts the types of that decomposition so the
single-node :class:`~repro.core.index.GeodabIndex` can expose the *same*
surface — a single-node index is simply a cluster with one logical shard
(shard 0) — and the service/executor layers serve either backend through
one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from .fingerprint import FingerprintSet

__all__ = ["NO_TRACE", "FanoutStats", "MatchCounts", "PreparedQuery", "TraceSink"]


class TraceSink(Protocol):
    """Where query stages report their timings.

    The protocol lives here — with the other types shared by every index
    backend — so the core fan-out code can be instrumented without a
    dependency on the serving tier; the real recorder is
    :class:`repro.service.tracing.Trace`.  Timestamps are whatever the
    sink's :meth:`now` returns (a monotonic clock on the real recorder,
    ``0.0`` on the null sink, a fake clock under test).

    ``stage`` records a top-level pipeline stage (``prepare`` /
    ``fanout`` / ``merge`` / ``rank``) — these aggregate into the
    per-stage latency histograms and, when the sink keeps detail, also
    become spans of the request's span tree.  ``event`` records
    detail-only child spans (per-shard contacts, cache probes) that are
    kept only when ``detail`` is true.  Both return a span id usable as
    a later span's ``parent``, or ``None`` when nothing was kept.
    """

    @property
    def detail(self) -> bool: ...

    def now(self) -> float: ...

    def stage(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None: ...

    def event(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None: ...


class _NullTrace:
    """The zero-cost sink: drops everything, never reads the clock."""

    __slots__ = ()

    @property
    def detail(self) -> bool:
        return False

    def now(self) -> float:
        return 0.0

    def stage(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        return None

    def event(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        return None


#: Shared null sink — the default ``trace`` argument throughout the
#: query path, so untraced execution allocates nothing.
NO_TRACE = _NullTrace()

#: Merged candidates of a query: parallel ``(internal_ids, counts)``
#: int64 arrays — every distinct internal id paired with the number of
#: query terms it shared.  Produced by
#: :func:`repro.core.postings.merge_hits` from per-shard hit streams.
MatchCounts = tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True, slots=True)
class PreparedQuery:
    """A query after fingerprinting and routing, before shard contact.

    Splitting preparation from execution lets the serving tier fan the
    per-shard lookups out over a worker pool (and batch the lookups of
    concurrent queries) while reusing exactly the routing and ranking of
    the sequential path.  ``plan`` maps shard id to the terms that shard
    must serve; a single-node index plans everything onto shard 0.
    """

    fingerprint_set: FingerprintSet
    terms: tuple[int, ...]
    plan: dict[int, list[int]]

    @property
    def query_bitmap(self) -> RoaringBitmap | Roaring64Map:
        """Bitmap of the query's distinct terms (for Jaccard ranking)."""
        return self.fingerprint_set.bitmap


@dataclass(frozen=True, slots=True)
class FanoutStats:
    """Distribution work performed by one query (Section VI-E's concern).

    ``candidates`` counts merged candidates referencing *live* slots
    only, consistent with ``QueryStats.candidates`` on the single-node
    backend — tombstoned slots never count, so the numbers do not drift
    after removals.  ``pruned`` counts candidates the scoring engine's
    count-based minimum-overlap threshold eliminated before computing
    any distance (0 unless ``max_distance`` < 1; see
    :mod:`repro.core.scoring`).

    ``hedged`` and ``failed_shards`` account the serving tier's
    fault handling: how many shard contacts were hedged (a duplicate
    sent to a second backend because the first straggled) and how many
    shards contributed *nothing* — the query still answered from the
    surviving shards, flagged degraded rather than failing.
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    pruned: int = 0
    hedged: int = 0
    failed_shards: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any planned shard failed to contribute its partial."""
        return self.failed_shards > 0
