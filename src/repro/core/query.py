"""Prepared-query and fan-out types shared by every index backend.

PR 1 gave the sharded index a ``prepare_query`` / ``query_prepared``
decomposition so the serving tier could fan shard lookups out over a
worker pool.  This module hosts the types of that decomposition so the
single-node :class:`~repro.core.index.GeodabIndex` can expose the *same*
surface — a single-node index is simply a cluster with one logical shard
(shard 0) — and the service/executor layers serve either backend through
one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from .fingerprint import FingerprintSet

__all__ = ["FanoutStats", "MatchCounts", "PreparedQuery"]

#: Merged candidates of a query: parallel ``(internal_ids, counts)``
#: int64 arrays — every distinct internal id paired with the number of
#: query terms it shared.  Produced by
#: :func:`repro.core.postings.merge_hits` from per-shard hit streams.
MatchCounts = tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True, slots=True)
class PreparedQuery:
    """A query after fingerprinting and routing, before shard contact.

    Splitting preparation from execution lets the serving tier fan the
    per-shard lookups out over a worker pool (and batch the lookups of
    concurrent queries) while reusing exactly the routing and ranking of
    the sequential path.  ``plan`` maps shard id to the terms that shard
    must serve; a single-node index plans everything onto shard 0.
    """

    fingerprint_set: FingerprintSet
    terms: tuple[int, ...]
    plan: dict[int, list[int]]

    @property
    def query_bitmap(self) -> RoaringBitmap | Roaring64Map:
        """Bitmap of the query's distinct terms (for Jaccard ranking)."""
        return self.fingerprint_set.bitmap


@dataclass(frozen=True, slots=True)
class FanoutStats:
    """Distribution work performed by one query (Section VI-E's concern).

    ``candidates`` counts merged candidates referencing *live* slots
    only, consistent with ``QueryStats.candidates`` on the single-node
    backend — tombstoned slots never count, so the numbers do not drift
    after removals.  ``pruned`` counts candidates the scoring engine's
    count-based minimum-overlap threshold eliminated before computing
    any distance (0 unless ``max_distance`` < 1; see
    :mod:`repro.core.scoring`).
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    pruned: int = 0
