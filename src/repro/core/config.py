"""Configuration of the geodab fingerprinting pipeline.

Bundles the parameters the paper tunes in Section VI-A2: the geohash
normalization depth, the winnowing bounds ``k`` (noise threshold) and
``t`` (guarantee threshold), and the geodab bit layout (prefix/suffix
widths, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo.geohash import MAX_DEPTH, cell_dimensions

#: Valid suffix-hash families (shared with the variant registry).
SUFFIX_HASHES: tuple[str, ...] = ("chain", "polynomial")


@dataclass(frozen=True, slots=True)
class GeodabConfig:
    """Parameters of the geodab fingerprinting pipeline.

    Attributes
    ----------
    normalization_depth:
        Geohash depth (in bits) of the grid normalization; the paper finds
        36 bits optimal for its London dataset (Figure 8).
    k:
        Winnowing lower bound: common sub-sequences shorter than ``k``
        normalized cells are treated as noise.
    t:
        Winnowing upper bound: any common sub-sequence of at least ``t``
        cells is guaranteed to share a fingerprint.  The window size is
        ``w = t - k + 1``.
    prefix_bits:
        Width of the geohash prefix embedded in each geodab; determines the
        sharding granularity (the paper uses 16).
    suffix_bits:
        Width of the order-sensitive hash suffix (the paper uses 16, for
        32-bit geodabs).
    cover_depth:
        Depth at which k-gram points are encoded before computing their
        covering cell; anything comfortably deeper than ``prefix_bits``
        works, and it must not exceed :data:`~repro.geo.geohash.MAX_DEPTH`.
    hash_seed:
        Seed of the order-sensitive suffix hash; lets tests build
        independent fingerprint universes.
    suffix_hash:
        Suffix hash family: ``"chain"`` (splitmix accumulator, default) or
        ``"polynomial"`` (rolling-capable; required by the O(n) fast-path
        winnower of :mod:`repro.core.fastpath`).
    """

    normalization_depth: int = 36
    k: int = 6
    t: int = 12
    prefix_bits: int = 16
    suffix_bits: int = 16
    cover_depth: int = 48
    hash_seed: int = 0
    suffix_hash: str = "chain"

    def __post_init__(self) -> None:
        if self.suffix_hash not in SUFFIX_HASHES:
            raise ValueError(
                f"suffix_hash must be 'chain' or 'polynomial', "
                f"got {self.suffix_hash!r}"
            )
        if not 1 <= self.normalization_depth <= MAX_DEPTH:
            raise ValueError(
                f"normalization_depth {self.normalization_depth} outside "
                f"[1, {MAX_DEPTH}]"
            )
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.t < self.k:
            raise ValueError(f"t ({self.t}) must be >= k ({self.k})")
        if not 1 <= self.prefix_bits <= 32:
            raise ValueError("prefix_bits must be in [1, 32]")
        if not 1 <= self.suffix_bits <= 32:
            raise ValueError("suffix_bits must be in [1, 32]")
        if not self.prefix_bits <= self.cover_depth <= MAX_DEPTH:
            raise ValueError(
                f"cover_depth must be in [prefix_bits, {MAX_DEPTH}]"
            )

    @property
    def window(self) -> int:
        """Winnowing window size ``w = t - k + 1`` (Section IV-A)."""
        return self.t - self.k + 1

    @property
    def geodab_bits(self) -> int:
        """Total width of a geodab fingerprint."""
        return self.prefix_bits + self.suffix_bits

    @property
    def fits_in_32_bits(self) -> bool:
        """Whether fingerprints fit the 32-bit roaring bitmap universe."""
        return self.geodab_bits <= 32

    def cell_size_m(self, latitude: float) -> tuple[float, float]:
        """(width, height) in meters of a normalization cell at ``latitude``."""
        return cell_dimensions(self.normalization_depth, latitude)

    def noise_threshold_m(self, latitude: float) -> float:
        """Approximate ground length below which matches are noise.

        The paper translates ``k`` cells into meters by assuming an average
        move of ~(width + height)/2 between consecutive cells (Section
        VI-A2: 6 moves of ~85 m -> ~510 m in London).
        """
        width, height = self.cell_size_m(latitude)
        return self.k * (width + height) / 2.0

    def guarantee_threshold_m(self, latitude: float) -> float:
        """Approximate ground length above which a match is guaranteed."""
        width, height = self.cell_size_m(latitude)
        return self.t * (width + height) / 2.0


#: The configuration the paper's evaluation settles on (Section VI-A2).
PAPER_CONFIG = GeodabConfig()
