"""Dense document-slot arena shared by the inverted-index backends.

Both :class:`~repro.core.index.TrajectoryInvertedIndex` and
:class:`~repro.cluster.cluster.ShardedGeodabIndex` reference trajectories
externally by arbitrary hashable identifiers and internally by dense
integers, and both recycle slots freed by ``remove()`` so a long-running
service stays at constant memory under delete/re-add churn.  This module
owns that bookkeeping once: parallel payload *columns* indexed by the
internal id, the id <-> internal mapping, and the free-slot recycling
with tombstones.

Callers keep direct references to ``ids`` and the column lists (the
query hot paths index into them), so the arena mutates those lists in
place and never replaces them.

With ``track_cardinality=True`` the arena additionally maintains a
:class:`CardinalityColumn` — a dense ``int64`` numpy column of per-slot
term-set cardinalities, with :data:`TOMBSTONE_CARD` marking freed slots.
The vectorized scoring engine (:mod:`repro.core.scoring`) reads the
column to turn shared-term counts into exact Jaccard distances without
touching a single bitmap; keeping its maintenance inside the arena's
allocate/release/restore cycle is what guarantees the invariant
``cards[slot] == len(term_set of ids[slot])`` survives slot recycling.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

__all__ = ["CardinalityColumn", "SlotArena", "TOMBSTONE", "TOMBSTONE_CARD"]

#: Marks an internal slot freed by ``release()``; distinct from any user
#: id, and shared by every backend so all of them tombstone identically.
TOMBSTONE: Hashable = object()

#: Cardinality recorded for tombstoned slots.  Negative so one dense
#: array answers both "how many terms" and "is this slot live" (a live
#: document may legitimately have an *empty* term set, so 0 cannot
#: double as the dead marker).
TOMBSTONE_CARD: int = -1


class CardinalityColumn:
    """Growable dense ``int64`` column of per-slot term-set sizes.

    Slot ``i`` holds ``len(term_set)`` of the live document in arena
    slot ``i``, or :data:`TOMBSTONE_CARD` for freed slots.  Backed by an
    amortized-doubling numpy array so the scoring hot path gets one
    contiguous vector (:meth:`view`) instead of a Python list.
    """

    __slots__ = ("_data", "_size")

    def __init__(self) -> None:
        self._data = np.empty(0, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def get(self, slot: int) -> int:
        """Cardinality recorded for one slot."""
        if not 0 <= slot < self._size:
            raise IndexError(slot)
        return int(self._data[slot])

    def set(self, slot: int, value: int) -> None:
        """Record a slot's cardinality, growing the column as needed."""
        if slot >= len(self._data):
            capacity = max(16, 2 * len(self._data), slot + 1)
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        if slot >= self._size:
            # Allocation is dense (append or recycle), so any gap would
            # be a bookkeeping bug; fill defensively with the tombstone
            # marker rather than leave uninitialized memory.
            self._data[self._size : slot] = TOMBSTONE_CARD
            self._size = slot + 1
        self._data[slot] = value

    def view(self) -> np.ndarray:
        """The live prefix of the column (read-only by convention).

        The returned array is a slice of internal storage: valid until
        the next growth, so hot paths should take it per call — exactly
        what the scoring engine does — rather than cache it.
        """
        return self._data[: self._size]


class SlotArena:
    """Internal-slot allocator with tombstone recycling.

    ``columns`` payload lists grow in lockstep with ``ids``; slot ``i``
    of every column belongs to the document ``ids[i]``.  Released slots
    are tombstoned and handed back by the next :meth:`allocate`.
    """

    __slots__ = (
        "ids",
        "id_to_internal",
        "columns",
        "cardinality_columns",
        "cardinalities",
        "_free_slots",
    )

    def __init__(
        self,
        num_columns: int,
        track_cardinality: bool = False,
        num_cardinality_columns: int | None = None,
    ) -> None:
        if num_columns < 1:
            raise ValueError("arena needs at least one payload column")
        if num_cardinality_columns is None:
            num_cardinality_columns = 1 if track_cardinality else 0
        if num_cardinality_columns < 0:
            raise ValueError("num_cardinality_columns must be non-negative")
        self.ids: list[Hashable] = []
        self.id_to_internal: dict[Hashable, int] = {}
        self.columns: tuple[list, ...] = tuple([] for _ in range(num_columns))
        #: Per-slot term-set size columns for the vectorized scoring
        #: engine — one per fingerprint variant on a multi-variant index;
        #: every column is maintained through the same allocate/release/
        #: restore cycle so the liveness invariant holds for all of them.
        self.cardinality_columns: tuple[CardinalityColumn, ...] = tuple(
            CardinalityColumn() for _ in range(num_cardinality_columns)
        )
        #: The first (default-variant) cardinality column, or ``None``
        #: when the arena tracks none — the pre-registry surface.
        self.cardinalities: CardinalityColumn | None = (
            self.cardinality_columns[0] if self.cardinality_columns else None
        )
        self._free_slots: list[int] = []

    def __len__(self) -> int:
        """Number of live (non-tombstoned) documents."""
        return len(self.id_to_internal)

    def __contains__(self, external_id: Hashable) -> bool:
        return external_id in self.id_to_internal

    def check_new_ids(self, external_ids: Iterable[Hashable]) -> None:
        """Reject identifiers already live or duplicated within a batch.

        Bulk inserts call this before mutating anything, so a rejected
        batch leaves no partial state.
        """
        seen: set[Hashable] = set()
        for external_id in external_ids:
            if external_id in self.id_to_internal or external_id in seen:
                raise KeyError(f"trajectory {external_id!r} already indexed")
            seen.add(external_id)

    def allocate(
        self,
        external_id: Hashable,
        *values,
        cardinality: "int | Sequence[int]" = 0,
    ) -> int:
        """Claim a slot for ``external_id`` holding one value per column.

        Reuses slots freed by :meth:`release`, keeping memory constant
        under delete/re-add churn instead of growing one tombstone per
        update.  ``cardinality`` is the document's term-set size — an
        ``int`` for the single-column arena, or one value per tracked
        cardinality column on a multi-variant arena.
        """
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} column values, got {len(values)}"
            )
        cards = self._cardinality_values(cardinality)
        if self._free_slots:
            internal = self._free_slots.pop()
            self.ids[internal] = external_id
            for column, value in zip(self.columns, values):
                column[internal] = value
        else:
            internal = len(self.ids)
            self.ids.append(external_id)
            for column, value in zip(self.columns, values):
                column.append(value)
        for column, value in zip(self.cardinality_columns, cards):
            column.set(internal, value)
        self.id_to_internal[external_id] = internal
        return internal

    def _cardinality_values(
        self, cardinality: "int | Sequence[int]"
    ) -> tuple[int, ...]:
        """Normalize the ``cardinality`` argument to one value per column."""
        if isinstance(cardinality, int):
            if len(self.cardinality_columns) > 1:
                raise ValueError(
                    "multi-variant arena requires one cardinality per column"
                )
            return (cardinality,)
        cards = tuple(int(value) for value in cardinality)
        if len(cards) != len(self.cardinality_columns):
            raise ValueError(
                f"expected {len(self.cardinality_columns)} cardinalities, "
                f"got {len(cards)}"
            )
        return cards

    def release(self, external_id: Hashable, *tombstone_values) -> int:
        """Free a document's slot, overwriting columns with tombstones.

        Returns the freed internal id; raises ``KeyError`` for unknown
        identifiers.  Callers needing the old payload (e.g. to unlink
        postings) must read it *before* releasing.
        """
        internal = self.id_to_internal.pop(external_id, None)
        if internal is None:
            raise KeyError(f"trajectory {external_id!r} not indexed")
        if len(tombstone_values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} tombstone values, "
                f"got {len(tombstone_values)}"
            )
        self.ids[internal] = TOMBSTONE
        for column, value in zip(self.columns, tombstone_values):
            column[internal] = value
        for column in self.cardinality_columns:
            column.set(internal, TOMBSTONE_CARD)
        self._free_slots.append(internal)
        return internal

    def internal_of(self, external_id: Hashable) -> int:
        """Internal slot of a live document (raises ``KeyError`` if absent)."""
        return self.id_to_internal[external_id]

    def restore(
        self,
        slot_ids: Iterable[Hashable],
        columns: "tuple[list, ...] | list[list]",
        cardinalities: "Sequence[int] | Sequence[Sequence[int]] | None" = None,
    ) -> None:
        """Rebuild the arena from a snapshot's exact slot layout.

        ``slot_ids`` is every slot in internal order — :data:`TOMBSTONE`
        marks the freed ones — and ``columns`` carries one value list per
        payload column, aligned with it.  Preserving the layout (instead
        of re-adding live documents densely) keeps persisted postings
        arrays valid as-is: they reference slots by internal id.
        Tombstoned slots rejoin the free list, so delete/re-add churn
        keeps recycling across a save/load cycle.

        A cardinality-tracking arena requires ``cardinalities`` (one
        entry per slot; tombstoned slots are forced to
        :data:`TOMBSTONE_CARD` regardless of the provided value), so a
        warm start can never silently lose the scoring fast path.  An
        arena with several cardinality columns takes one per-slot
        sequence *per column* instead of the flat form.
        """
        if self.ids:
            raise ValueError("restore() requires an empty arena")
        if len(columns) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} columns, got {len(columns)}"
            )
        slot_ids = list(slot_ids)
        for values in columns:
            if len(values) != len(slot_ids):
                raise ValueError("column length does not match slot count")
        card_rows: tuple[Sequence[int], ...] = ()
        if self.cardinality_columns:
            if cardinalities is None:
                raise ValueError(
                    "cardinality-tracking arena requires restore cardinalities"
                )
            if len(self.cardinality_columns) == 1:
                card_rows = (cardinalities,)  # type: ignore[assignment]
            else:
                card_rows = tuple(cardinalities)  # type: ignore[arg-type]
                if len(card_rows) != len(self.cardinality_columns):
                    raise ValueError(
                        f"expected {len(self.cardinality_columns)} cardinality "
                        f"columns, got {len(card_rows)}"
                    )
            for row in card_rows:
                if len(row) != len(slot_ids):
                    raise ValueError(
                        "cardinality column length does not match slot count"
                    )
        for internal, external_id in enumerate(slot_ids):
            self.ids.append(external_id)
            for column, values in zip(self.columns, columns):
                column.append(values[internal])
            if external_id is TOMBSTONE:
                for column in self.cardinality_columns:
                    column.set(internal, TOMBSTONE_CARD)
                self._free_slots.append(internal)
            else:
                for column, row in zip(self.cardinality_columns, card_rows):
                    column.set(internal, int(row[internal]))
                self.id_to_internal[external_id] = internal
