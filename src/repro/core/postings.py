"""Columnar postings storage for the inverted-index backends.

PR 2 left postings as Python ``list[int]`` per term, merged element by
element through ``collections.Counter`` — fine for ingest, but the read
path pays for it on every query: each candidate id is touched once per
Python bytecode step.  This module stores each term's postings as a
*sorted* ``int64`` numpy array plus a small append buffer, so that

* a shard partial is one ``np.concatenate`` over term arrays (the "hit
  stream": every posting of every query term, with multiplicity);
* merging partials across shards is another concatenate, and the
  per-candidate shared-term counts fall out of one ``np.unique`` pass
  (:func:`merge_hits`) instead of a Python loop per posting;
* freshly ingested documents land in a per-term append buffer that is
  folded into the sorted array lazily on first read, keeping bulk
  ingest O(appends) and reads amortized.

The arrays returned by :meth:`PostingsStore.get` and
:meth:`PostingsStore.hits` are views of internal state — callers must
treat them as read-only.

Concurrency contract: *writes* (``append``/``extend``/``discard``)
require external exclusion — the serving tier performs them under its
exclusive write lock — but *reads* may run concurrently with each
other.  Because reading lazily folds append buffers into the sorted
arrays, the fold itself is guarded by an internal lock (with a
lock-free fast path once a term is compacted) so concurrent readers
can never observe a half-folded term and drop freshly ingested
postings.
"""

from __future__ import annotations

import struct
import threading
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["PostingsStore", "merge_hits", "EMPTY_HITS"]

#: The empty hit stream (shared; treat as read-only).
EMPTY_HITS: np.ndarray = np.empty(0, dtype=np.int64)

#: Magic prefix of the binary postings blob (see :meth:`PostingsStore.save`).
_BLOB_MAGIC = b"GDPOST01"

#: Fixed-size blob header: magic + term count + total postings.
_BLOB_HEADER = struct.Struct("<8sQQ")


def merge_hits(
    hit_streams: Iterable[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard hit streams into ``(internal_ids, counts)``.

    Each input array is a concatenation of postings lists (one internal
    id per term occurrence); the output pairs every distinct internal id
    with the number of query terms it shared — the quantity Jaccard
    ranking needs — computed in one vectorized ``np.unique`` pass.
    """
    chunks = [hits for hits in hit_streams if len(hits)]
    if not chunks:
        return EMPTY_HITS, EMPTY_HITS
    merged = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    return np.unique(merged, return_counts=True)


class PostingsStore:
    """Term -> sorted ``int64`` postings array, with an append buffer.

    Writes append to a per-term Python list (cheap, no re-sorting);
    reads fold the buffer into the term's sorted array once and serve
    numpy arrays from then on.  Sortedness is what makes removal a
    ``searchsorted`` instead of a scan and keeps merged hit streams
    cache-friendly for ``np.unique``.
    """

    __slots__ = ("_arrays", "_buffers", "_postings", "_fold_lock")

    def __init__(self) -> None:
        self._arrays: dict[int, np.ndarray] = {}
        self._buffers: dict[int, list[int]] = {}
        self._postings = 0
        # Serializes lazy buffer folds between concurrent readers; see
        # the module docstring for the full concurrency contract.
        self._fold_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append(self, term: int, internal: int) -> None:
        """Add one posting (buffered; folded in on next read)."""
        buffer = self._buffers.get(term)
        if buffer is None:
            self._buffers[term] = [internal]
        else:
            buffer.append(internal)
        self._postings += 1

    def extend(self, term: int, internals: Sequence[int]) -> None:
        """Add many postings for one term."""
        if not internals:
            return
        buffer = self._buffers.get(term)
        if buffer is None:
            self._buffers[term] = list(internals)
        else:
            buffer.extend(internals)
        self._postings += len(internals)

    def extend_grouped(self, grouped: dict[int, list[int]]) -> None:
        """Add postings grouped by term (the bulk-ingest fast path)."""
        for term, internals in grouped.items():
            self.extend(term, internals)

    def discard(self, term: int, internal: int) -> bool:
        """Remove one posting; returns whether it was present.

        Drops the term entirely once its last posting is gone, so the
        dictionary never accumulates empty terms.
        """
        buffer = self._buffers.get(term)
        if buffer is not None:
            try:
                buffer.remove(internal)
            except ValueError:
                pass
            else:
                if not buffer:
                    del self._buffers[term]
                self._postings -= 1
                self._drop_if_empty(term)
                return True
        array = self._arrays.get(term)
        if array is not None and len(array):
            at = int(np.searchsorted(array, internal))
            if at < len(array) and array[at] == internal:
                self._arrays[term] = np.delete(array, at)
                self._postings -= 1
                self._drop_if_empty(term)
                return True
        return False

    def _drop_if_empty(self, term: int) -> None:
        array = self._arrays.get(term)
        if array is not None and not len(array):
            del self._arrays[term]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _compact(self, term: int) -> np.ndarray | None:
        """Fold the term's buffer into its sorted array, if any.

        Reads race with each other (the serving tier's lock admits many
        readers at once), so the fold is double-checked under the store
        lock and publishes the merged array *before* dropping the
        buffer: a concurrent lock-free reader either still sees the
        buffer (and queues on the lock) or already sees the merged
        array — never the pre-merge array with the buffer gone.
        """
        if term not in self._buffers:
            return self._arrays.get(term)
        with self._fold_lock:
            buffer = self._buffers.get(term)
            if buffer is None:
                # Another reader folded this term while we waited.
                return self._arrays.get(term)
            array = self._arrays.get(term)
            fresh = np.asarray(buffer, dtype=np.int64)
            merged = fresh if array is None else np.concatenate([array, fresh])
            merged.sort()
            self._arrays[term] = merged
            del self._buffers[term]
            return merged

    def compact_all(self) -> None:
        """Fold every pending append buffer into its sorted array.

        Reader-safe (each fold runs under the internal fold lock), so
        the serving tier's compaction policy can run it under a *read*
        lock — concurrent queries proceed while the buffers fold, and
        the write path never pays for the sort.
        """
        for term in list(self._buffers):
            self._compact(term)

    def get(self, term: int) -> np.ndarray | None:
        """Sorted postings of a term (read-only view), or ``None``."""
        return self._compact(term)

    def term_count(self, term: int) -> int:
        """Document frequency of one term, **without** folding.

        Counts the sorted array plus any un-folded append buffer under
        the fold lock (one consistent snapshot: folds mutate both dicts
        under the same lock), so the query planner can read dfs off the
        write-hot path without triggering the compaction that
        :meth:`get` performs.
        """
        with self._fold_lock:
            array = self._arrays.get(term)
            buffer = self._buffers.get(term)
            count = 0 if array is None else len(array)
            if buffer is not None:
                count += len(buffer)
            return count

    def term_counts(self, terms: Sequence[int]) -> np.ndarray:
        """Bulk document frequencies (``int64``), fold-free.

        One lock acquisition covers the whole batch, so the counts are
        a single consistent snapshot even while concurrent readers fold
        other terms.
        """
        counts = np.zeros(len(terms), dtype=np.int64)
        with self._fold_lock:
            arrays = self._arrays
            buffers = self._buffers
            if not buffers:
                # Fully folded store (the steady serving state): one
                # dict probe per term is the whole read.
                for i, term in enumerate(terms):
                    array = arrays.get(term)
                    if array is not None:
                        counts[i] = len(array)
                return counts
            for i, term in enumerate(terms):
                array = arrays.get(term)
                total = 0 if array is None else len(array)
                buffer = buffers.get(term)
                if buffer is not None:
                    total += len(buffer)
                counts[i] = total
        return counts

    def hits(self, terms: Sequence[int]) -> np.ndarray:
        """Concatenated postings of every present term (the hit stream).

        One internal id per (term, document) pairing — multiplicity is
        meaningful: :func:`merge_hits` turns it into shared-term counts.
        Terms absent from the store are pre-filtered with a membership
        probe (safe lock-free, see ``__contains__``) before any
        compaction machinery runs.
        """
        arrays = self._arrays
        buffers = self._buffers
        chunks = []
        if not buffers:
            # Fully folded store (the steady serving state): one dict
            # probe per term is the whole read.
            for term in terms:
                postings = arrays.get(term)
                if postings is not None and len(postings):
                    chunks.append(postings)
        else:
            for term in terms:
                postings = arrays.get(term)
                if term in buffers:
                    # Only terms with a pending buffer pay the
                    # compaction machinery (same benign staleness as
                    # before if an append races in).
                    postings = self._compact(term)
                if postings is not None and len(postings):
                    chunks.append(postings)
        if not chunks:
            return EMPTY_HITS
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def postings_map(
        self, terms: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Per-term postings arrays for the terms present in the store.

        The micro-batching executor fetches the union of a batch's terms
        once with this and splits per-query partials back out.
        """
        out: dict[int, np.ndarray] = {}
        for term in terms:
            postings = self._compact(term)
            if postings is not None and len(postings):
                out[term] = postings
        return out

    def distinct_internals(self) -> set[int]:
        """Distinct internal ids referenced by any posting."""
        for term in list(self._buffers):
            self._compact(term)
        with self._fold_lock:
            # Snapshot so a concurrent reader's fold cannot resize the
            # dictionary mid-iteration.
            arrays = list(self._arrays.values())
        out: set[int] = set()
        for array in arrays:
            out.update(array.tolist())
        return out

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    def __contains__(self, term: int) -> bool:
        # Safe lock-free: folds publish the merged array before dropping
        # the buffer, so a term is visible in at least one dict
        # throughout.
        return term in self._arrays or term in self._buffers

    def __iter__(self) -> Iterator[int]:
        """Every distinct term."""
        with self._fold_lock:
            terms = set(self._arrays)
            terms.update(self._buffers)
        return iter(terms)

    def __len__(self) -> int:
        """Number of distinct terms."""
        with self._fold_lock:
            count = len(self._arrays)
            for term in self._buffers:
                if term not in self._arrays:
                    count += 1
            return count

    def __bool__(self) -> bool:
        return bool(self._arrays) or bool(self._buffers)

    @property
    def num_postings(self) -> int:
        """Total postings entries across all terms."""
        return self._postings

    @property
    def buffered_postings(self) -> int:
        """Postings still sitting in append buffers (not yet folded).

        The serving tier's compaction policy watches this to decide when
        a proactive :meth:`compact_all` is worth it.  Safe to read
        concurrently with writers: the dictionary snapshot below is one
        atomic C-level call, so a writer inserting a new term can never
        resize the dictionary mid-iteration (and ``len`` of a list a
        writer is appending to is itself atomic).
        """
        with self._fold_lock:
            buffers = list(self._buffers.values())
        return sum(len(buffer) for buffer in buffers)

    # ------------------------------------------------------------------
    # Persistence (the v2 snapshot postings blob)
    # ------------------------------------------------------------------
    #
    # Layout (everything little-endian):
    #
    #   8 bytes   magic ``GDPOST01``
    #   u64       number of distinct terms
    #   u64       total postings entries
    #   u64 * n   terms, ascending
    #   u64 * n   postings count per term (offsets are the running sum)
    #   i64 * m   every term's sorted postings, concatenated in term order
    #
    # The directory is tiny; the data section is one contiguous int64
    # blob, so ``load(..., mmap_mode="r")`` maps it with ``np.memmap``
    # and every term array is a zero-copy slice — a multi-GB postings
    # file warms up in milliseconds and pages in lazily as queried.

    def save(self, path: str | Path) -> None:
        """Write the store as one binary blob (folds buffers first).

        Callers must exclude concurrent *writes* for the duration (the
        serving tier snapshots under its read lock, which does exactly
        that); concurrent reads are fine.
        """
        self.compact_all()
        terms = sorted(self._arrays)
        arrays = [self._arrays[term] for term in terms]
        term_column = np.fromiter(terms, dtype=np.uint64, count=len(terms))
        lengths = np.fromiter(
            (len(array) for array in arrays), dtype=np.uint64, count=len(arrays)
        )
        total = int(lengths.sum()) if len(arrays) else 0
        with open(path, "wb") as handle:
            handle.write(_BLOB_HEADER.pack(_BLOB_MAGIC, len(terms), total))
            handle.write(term_column.astype("<u8", copy=False).tobytes())
            handle.write(lengths.astype("<u8", copy=False).tobytes())
            for array in arrays:
                handle.write(np.ascontiguousarray(array, dtype="<i8").tobytes())

    @classmethod
    def load(cls, path: str | Path, mmap_mode: str | None = None) -> "PostingsStore":
        """Read a store written by :meth:`save`.

        With ``mmap_mode`` (e.g. ``"r"``) the data section is
        memory-mapped instead of copied: every term's array is a view
        into the file, loaded lazily by the page cache.  Without it the
        blob is read into process memory.
        """
        path = Path(path)
        with open(path, "rb") as handle:
            header = handle.read(_BLOB_HEADER.size)
            if len(header) < _BLOB_HEADER.size:
                raise ValueError(f"{path} is not a postings blob (truncated)")
            magic, num_terms, total = _BLOB_HEADER.unpack(header)
            if magic != _BLOB_MAGIC:
                raise ValueError(f"{path} is not a postings blob")
            terms = np.fromfile(handle, dtype="<u8", count=num_terms)
            lengths = np.fromfile(handle, dtype="<u8", count=num_terms)
            if len(terms) < num_terms or len(lengths) < num_terms:
                raise ValueError(f"{path}: truncated postings directory")
            data_offset = handle.tell()
            if mmap_mode is None:
                data = np.fromfile(handle, dtype="<i8", count=total)
        if mmap_mode is not None and total:
            mapped = np.memmap(
                path, dtype="<i8", mode=mmap_mode,
                offset=data_offset, shape=(total,),
            )
            # Re-wrap as a base-class ndarray view (same pages, kept
            # alive through ``.base``): slicing ``np.memmap`` runs its
            # costly ``__array_finalize__`` per term, which dominates
            # load time for stores with many terms.
            data = mapped.view(np.ndarray)
        elif total == 0:
            data = EMPTY_HITS
        if len(data) < total:
            raise ValueError(f"{path}: truncated postings data")
        store = cls()
        ends = np.cumsum(lengths.astype(np.int64, copy=False))
        start = 0
        for term, end in zip(terms.tolist(), ends.tolist()):
            store._arrays[term] = data[start:end]
            start = end
        store._postings = total
        return store
