"""Inverted indexes over trajectory terms, with ranked retrieval.

This is the retrieval machinery of Sections II-B and III-A: terms map to
postings lists of trajectory identifiers; a query extracts its own terms,
collects the union of their postings as candidates, and ranks candidates
by Jaccard distance between term sets (Equation 1).

Two concrete indexes share the machinery:

* :class:`GeodabIndex` — terms are winnowed geodabs (the paper's method);
* :class:`~repro.core.baseline.GeohashIndex` — terms are the normalized
  geohash cells themselves (the comparator of Figures 12-14).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..geo.point import Point, Trajectory
from .config import GeodabConfig
from .fingerprint import Fingerprinter, FingerprintSet
from .geodab import GeodabScheme

__all__ = [
    "SearchResult",
    "QueryStats",
    "IndexStats",
    "TrajectoryInvertedIndex",
    "GeodabIndex",
]

#: Normalizer signature: maps a raw trajectory to a normalized one.
Normalizer = Callable[[Trajectory], list[Point]]

#: Marks an internal slot freed by remove(); distinct from any user id
#: (shared with the sharded index so both tombstone identically).
_TOMBSTONE = object()


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked retrieval hit."""

    trajectory_id: Hashable
    distance: float
    shared_terms: int

    @property
    def jaccard(self) -> float:
        """Jaccard coefficient (complement of the reported distance)."""
        return 1.0 - self.distance


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Work accounting for one query — the quantities behind Figure 14.

    ``candidates`` counts every trajectory pulled from the postings lists;
    ``scored`` counts only those whose Jaccard distance survived the
    ``max_distance`` filter (the results actually ranked); ``returned``
    is what the ``limit`` cut left over.
    """

    query_terms: int
    candidates: int
    scored: int
    returned: int


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Shape of an index."""

    trajectories: int
    terms: int
    postings: int

    @property
    def mean_postings_length(self) -> float:
        """Average postings-list length."""
        if self.terms == 0:
            return 0.0
        return self.postings / self.terms


class TrajectoryInvertedIndex:
    """Shared core of the geodab and geohash inverted indexes.

    Subclasses define how a trajectory is turned into terms by overriding
    :meth:`_extract`.  Trajectories are referenced externally by arbitrary
    hashable identifiers and internally by dense integers.
    """

    def __init__(self, store_points: bool = False) -> None:
        self._postings: dict[int, list[int]] = {}
        self._ids: list[Hashable] = []
        self._id_to_internal: dict[Hashable, int] = {}
        self._term_sets: list[RoaringBitmap | Roaring64Map] = []
        self._points: list[list[Point] | None] = []
        self._store_points = store_points
        self._free_slots: list[int] = []

    def _allocate(
        self,
        trajectory_id: Hashable,
        bitmap: RoaringBitmap | Roaring64Map,
        points: list[Point] | None,
    ) -> int:
        """Claim an internal slot, reusing ones freed by :meth:`remove`.

        Reuse keeps a long-running service at constant memory under
        delete/re-add churn instead of growing one tombstone per update.
        """
        if self._free_slots:
            internal = self._free_slots.pop()
            self._ids[internal] = trajectory_id
            self._term_sets[internal] = bitmap
            self._points[internal] = points
        else:
            internal = len(self._ids)
            self._ids.append(trajectory_id)
            self._term_sets.append(bitmap)
            self._points.append(points)
        self._id_to_internal[trajectory_id] = internal
        return internal

    # ------------------------------------------------------------------
    # Term extraction (subclass responsibility)
    # ------------------------------------------------------------------

    def _extract(self, points: Trajectory) -> tuple[
        list[int], RoaringBitmap | Roaring64Map
    ]:
        """Return (distinct terms, term bitmap) for a trajectory."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        """Index a trajectory under ``trajectory_id``.

        Re-adding an existing identifier raises: updates should go through
        :meth:`remove` first, mirroring the immutable-segment behaviour of
        real search engines.
        """
        if trajectory_id in self._id_to_internal:
            raise KeyError(f"trajectory {trajectory_id!r} already indexed")
        terms, bitmap = self._extract(points)
        internal = self._allocate(
            trajectory_id, bitmap, list(points) if self._store_points else None
        )
        for term in terms:
            postings = self._postings.get(term)
            if postings is None:
                self._postings[term] = [internal]
            else:
                postings.append(internal)

    def add_many(
        self, items: Iterable[tuple[Hashable, Trajectory]]
    ) -> None:
        """Index a batch of ``(trajectory_id, points)`` pairs."""
        for trajectory_id, points in items:
            self.add(trajectory_id, points)

    def remove(self, trajectory_id: Hashable) -> None:
        """Remove a trajectory from the index."""
        internal = self._id_to_internal.pop(trajectory_id, None)
        if internal is None:
            raise KeyError(f"trajectory {trajectory_id!r} not indexed")
        for term in self._term_sets[internal]:
            postings = self._postings.get(int(term))
            if postings is None:
                continue
            try:
                postings.remove(internal)
            except ValueError:
                pass
            if not postings:
                del self._postings[int(term)]
        # Tombstone the slot and recycle it for a future add.
        self._term_sets[internal] = type(self._term_sets[internal])()
        self._points[internal] = None
        self._ids[internal] = _TOMBSTONE
        self._free_slots.append(internal)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """Ranked retrieval: trajectories within ``max_distance``, sorted.

        Implements the problem statement of Section II-B1: results are
        ordered by increasing Jaccard distance to the query; ties break by
        identifier for determinism.
        """
        results, _ = self.query_with_stats(points, limit, max_distance)
        return results

    def query_with_stats(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], QueryStats]:
        """Like :meth:`query` but also reports the work performed."""
        terms, query_bitmap = self._extract(points)
        return self.query_terms(terms, query_bitmap, limit, max_distance)

    def query_terms(
        self,
        terms: Sequence[int],
        query_bitmap: RoaringBitmap | Roaring64Map,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], QueryStats]:
        """Ranked retrieval from already-extracted query terms.

        The serving tier caches extracted fingerprints and calls this
        directly so a cached query skips re-normalization and winnowing.
        """
        matches: Counter[int] = Counter()
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                matches.update(postings)
        kept: list[SearchResult] = []
        for internal, shared in matches.items():
            distance = query_bitmap.jaccard_distance(self._term_sets[internal])  # type: ignore[arg-type]
            if distance <= max_distance:
                kept.append(
                    SearchResult(self._ids[internal], distance, shared)
                )
        kept.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
        returned = kept if limit is None else kept[:limit]
        stats = QueryStats(
            query_terms=len(terms),
            candidates=len(matches),
            scored=len(kept),
            returned=len(returned),
        )
        return returned, stats

    def candidates(self, points: Trajectory) -> set[Hashable]:
        """Identifiers sharing at least one term with the query.

        This is the raw Step-1 candidate set a spatial index would hand to
        the expensive Step-2 distance computation; Figure 14 measures how
        its size differs between geodab and geohash terms.
        """
        terms, _ = self._extract(points)
        out: set[Hashable] = set()
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                out.update(self._ids[i] for i in postings)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_internal)

    def __contains__(self, trajectory_id: Hashable) -> bool:
        return trajectory_id in self._id_to_internal

    def term_set(self, trajectory_id: Hashable) -> RoaringBitmap | Roaring64Map:
        """Stored term bitmap of an indexed trajectory."""
        return self._term_sets[self._id_to_internal[trajectory_id]]

    def points_of(self, trajectory_id: Hashable) -> list[Point]:
        """Stored raw points (requires ``store_points=True``)."""
        if not self._store_points:
            raise RuntimeError("index was built with store_points=False")
        points = self._points[self._id_to_internal[trajectory_id]]
        assert points is not None
        return points

    def stats(self) -> IndexStats:
        """Index shape statistics."""
        return IndexStats(
            trajectories=len(self._id_to_internal),
            terms=len(self._postings),
            postings=sum(len(p) for p in self._postings.values()),
        )

    def postings_for(self, term: int) -> list[Hashable]:
        """Identifiers in a term's postings list (diagnostics)."""
        return [self._ids[i] for i in self._postings.get(term, [])]

    def iter_terms(self) -> Iterable[int]:
        """All distinct terms of the dictionary."""
        return iter(self._postings)


class GeodabIndex(TrajectoryInvertedIndex):
    """The paper's trajectory index: winnowed geodabs as terms.

    An optional ``normalizer`` is applied to every trajectory (both at
    indexing and at query time), keeping the normalization choice local to
    the index as Section V prescribes.
    """

    def __init__(
        self,
        config: GeodabConfig | GeodabScheme | Fingerprinter | None = None,
        normalizer: Normalizer | None = None,
        store_points: bool = False,
    ) -> None:
        super().__init__(store_points=store_points)
        if isinstance(config, Fingerprinter):
            self.fingerprinter = config
        else:
            self.fingerprinter = Fingerprinter(config)
        self.normalizer = normalizer
        self._fingerprint_sets: dict[Hashable, FingerprintSet] = {}

    @property
    def config(self) -> GeodabConfig:
        """The fingerprinting configuration."""
        return self.fingerprinter.config

    def _extract(self, points: Trajectory) -> tuple[
        list[int], RoaringBitmap | Roaring64Map
    ]:
        if self.normalizer is not None:
            points = self.normalizer(points)
        fingerprint_set = self.fingerprinter.fingerprint(points)
        self._last_fingerprint_set = fingerprint_set
        terms = sorted(set(fingerprint_set.values))
        return terms, fingerprint_set.bitmap

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        super().add(trajectory_id, points)
        # _extract ran inside add; retain the full selection order for
        # motif discovery over indexed trajectories.
        self._fingerprint_sets[trajectory_id] = self._last_fingerprint_set

    def remove(self, trajectory_id: Hashable) -> None:
        super().remove(trajectory_id)
        self._fingerprint_sets.pop(trajectory_id, None)

    def fingerprint_set(self, trajectory_id: Hashable) -> FingerprintSet:
        """Ordered fingerprint set of an indexed trajectory."""
        return self._fingerprint_sets[trajectory_id]

    def add_fingerprints(
        self,
        trajectory_id: Hashable,
        fingerprint_set: FingerprintSet,
        points: Trajectory | None = None,
    ) -> None:
        """Insert a document from precomputed fingerprints.

        Used by :mod:`repro.core.persistence` to rebuild an index without
        re-normalizing and re-winnowing, and by the serving tier to keep
        fingerprinting (pure CPU, config-only) outside its write lock.
        Raw ``points`` are stored only when given *and* the index was
        built with ``store_points=True``.
        """
        if trajectory_id in self._id_to_internal:
            raise KeyError(f"trajectory {trajectory_id!r} already indexed")
        stored = list(points) if self._store_points and points is not None else None
        internal = self._allocate(trajectory_id, fingerprint_set.bitmap, stored)
        for term in sorted(set(fingerprint_set.values)):
            self._postings.setdefault(term, []).append(internal)
        self._fingerprint_sets[trajectory_id] = fingerprint_set

    # Backwards-compatible name used by repro.core.persistence.
    _restore_document = add_fingerprints

    def fingerprint_query(self, points: Trajectory) -> FingerprintSet:
        """Fingerprints of a query under this index's normalization."""
        if self.normalizer is not None:
            points = self.normalizer(points)
        return self.fingerprinter.fingerprint(points)
