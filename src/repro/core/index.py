"""Inverted indexes over trajectory terms, with ranked retrieval.

This is the retrieval machinery of Sections II-B and III-A: terms map to
postings lists of trajectory identifiers; a query extracts its own terms,
collects the union of their postings as candidates, and ranks candidates
by Jaccard distance between term sets (Equation 1).

Two concrete indexes share the machinery:

* :class:`GeodabIndex` — terms are winnowed geodabs (the paper's method);
* :class:`~repro.core.baseline.GeohashIndex` — terms are the normalized
  geohash cells themselves (the comparator of Figures 12-14).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..geo.point import Point, Trajectory
from . import planner as query_planner
from .arena import TOMBSTONE, CardinalityColumn, SlotArena
from .config import GeodabConfig
from .fingerprint import Fingerprinter, FingerprintSet
from .geodab import GeodabScheme
from .planner import PlannerStats
from .postings import PostingsStore, merge_hits
from .registry import (
    AUTO_VARIANT,
    DEFAULT_VARIANT,
    FingerprintRegistry,
    UnknownVariant,
    VariantSpec,
)
from .query import (
    NO_TRACE,
    FanoutStats,
    MatchCounts,
    PreparedQuery,
    QuerySpec,
    TraceSink,
)
from .rerank import ExactSearchUnsupported, rerank_candidates
from .scoring import (
    ScoringStats,
    SearchResult,
    live_candidates,
    rank_candidates,
    rank_candidates_scalar,
)

__all__ = [
    "SearchResult",
    "QueryStats",
    "IndexStats",
    "TrajectoryInvertedIndex",
    "GeodabIndex",
]

#: Normalizer signature: maps a raw trajectory to a normalized one.
Normalizer = Callable[[Trajectory], list[Point]]

#: Backwards-compatible alias (the tombstone now lives with the arena).
_TOMBSTONE = TOMBSTONE


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Work accounting for one query — the quantities behind Figure 14.

    ``candidates`` counts every *live* trajectory pulled from the
    postings lists (tombstoned slots reachable through stale hit streams
    are excluded, so the numbers do not drift after removals — matching
    ``FanoutStats.candidates`` on the sharded backend); ``pruned``
    counts candidates the count-based minimum-overlap threshold cut
    before any distance computation (0 unless ``max_distance`` < 1);
    ``scored`` counts only those whose Jaccard distance survived the
    ``max_distance`` filter (the results actually ranked); ``returned``
    is what the ``limit`` cut left over.

    The planner quartet (``terms_skipped`` / ``postings_skipped`` /
    ``postings_bytes_avoided`` / ``collection_cut``) accounts bounded
    candidate collection (:mod:`repro.core.planner`) and stays zero
    under exhaustive collection — see
    :class:`~repro.core.query.FanoutStats` for the field semantics.
    """

    query_terms: int
    candidates: int
    scored: int
    returned: int
    pruned: int = 0
    terms_skipped: int = 0
    postings_skipped: int = 0
    postings_bytes_avoided: int = 0
    collection_cut: bool = False


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Shape of an index."""

    trajectories: int
    terms: int
    postings: int

    @property
    def mean_postings_length(self) -> float:
        """Average postings-list length."""
        if self.terms == 0:
            return 0.0
        return self.postings / self.terms


class TrajectoryInvertedIndex:
    """Shared core of the geodab and geohash inverted indexes.

    Subclasses define how a trajectory is turned into terms by overriding
    :meth:`_extract`.  Trajectories are referenced externally by arbitrary
    hashable identifiers and internally by dense integers.
    """

    def __init__(
        self,
        store_points: bool = False,
        variant_names: Sequence[str] = (DEFAULT_VARIANT,),
    ) -> None:
        names = tuple(variant_names)
        if not names or names[0] != DEFAULT_VARIANT:
            raise ValueError("variant_names must start with 'default'")
        if len(set(names)) != len(names):
            raise ValueError("variant_names must be distinct")
        #: Registered fingerprint variant names, ``default`` first.  A
        #: single-entry tuple is exactly the pre-registry index.
        self._variant_names = names
        extras = names[1:]
        # The arena owns slot recycling; the aliases below share its
        # lists so the query hot paths index them directly.  It also
        # maintains one per-slot cardinality column *per variant* for
        # the vectorized scoring engine (no bitmaps touched at query
        # time).  Columns: [default bitmaps, points, *extra bitmaps].
        self._arena = SlotArena(
            num_columns=2 + len(extras),
            num_cardinality_columns=len(names),
        )
        self._ids = self._arena.ids
        self._id_to_internal = self._arena.id_to_internal
        self._term_sets: list[RoaringBitmap | Roaring64Map] = self._arena.columns[0]
        self._points: list[list[Point] | None] = self._arena.columns[1]
        self._store_points = store_points
        # Columnar postings: term -> sorted int64 array + append buffer,
        # one independent store per variant.  The default variant keeps
        # the pre-registry attribute names so existing call sites (and
        # persistence) read the same storage they always did.
        self._postings = PostingsStore()
        self._variant_postings: dict[str, PostingsStore] = {
            DEFAULT_VARIANT: self._postings
        }
        self._variant_bitmaps: dict[str, list] = {DEFAULT_VARIANT: self._term_sets}
        self._variant_cards: dict[str, CardinalityColumn] = {
            DEFAULT_VARIANT: self._arena.cardinality_columns[0]
        }
        for offset, name in enumerate(extras):
            self._variant_postings[name] = PostingsStore()
            self._variant_bitmaps[name] = self._arena.columns[2 + offset]
            self._variant_cards[name] = self._arena.cardinality_columns[1 + offset]

    # ------------------------------------------------------------------
    # Variant surface
    # ------------------------------------------------------------------

    @property
    def variant_names(self) -> tuple[str, ...]:
        """Registered fingerprint variant names (``default`` first)."""
        return self._variant_names

    def resolve_variant(self, name: str = DEFAULT_VARIANT) -> str:
        """Concrete variant for a query's (possibly ``auto``) request.

        Backends without a registry know only ``default``; the geodab
        backends override this with the registry's densest-variant
        policy for ``auto``.
        """
        if name in self._variant_names:
            return name
        if name == AUTO_VARIANT:
            return self._variant_names[0]
        raise UnknownVariant(name, self._variant_names)

    def _variant_store(self, variant: str) -> PostingsStore:
        store = self._variant_postings.get(variant)
        if store is None:
            raise UnknownVariant(variant, self._variant_names)
        return store

    def _attach_postings(self, variant: str, store: PostingsStore) -> None:
        """Swap a (loaded) postings store in, keeping aliases in sync.

        Persistence's warm-start hook: the default variant is reachable
        both as ``_postings`` and through the variant map, and replacing
        one without the other would silently split the index's storage.
        """
        if variant not in self._variant_postings:
            raise UnknownVariant(variant, self._variant_names)
        self._variant_postings[variant] = store
        if variant == DEFAULT_VARIANT:
            self._postings = store

    def _variant_cardinalities(self, variant: str) -> CardinalityColumn:
        column = self._variant_cards.get(variant)
        if column is None:
            raise UnknownVariant(variant, self._variant_names)
        return column

    # ------------------------------------------------------------------
    # Term extraction (subclass responsibility)
    # ------------------------------------------------------------------

    def _extract(self, points: Trajectory) -> tuple[
        list[int], RoaringBitmap | Roaring64Map
    ]:
        """Return (distinct terms, term bitmap) for a trajectory."""
        raise NotImplementedError

    def _extract_many(
        self, batch: Sequence[Trajectory]
    ) -> list[tuple[list[int], RoaringBitmap | Roaring64Map]]:
        """Batch term extraction; subclasses may vectorize this."""
        return [self._extract(points) for points in batch]

    def _extract_variants(
        self, points: Trajectory
    ) -> list[tuple[list[int], RoaringBitmap | Roaring64Map]]:
        """(terms, bitmap) per registered variant, default first.

        Single-variant backends reduce to one :meth:`_extract` call;
        multi-variant subclasses override to run every registered
        pipeline over the same normalized points.
        """
        return [self._extract(points)]

    def _extract_variants_many(
        self, batch: Sequence[Trajectory]
    ) -> list[list[tuple[list[int], RoaringBitmap | Roaring64Map]]]:
        """Batch form of :meth:`_extract_variants` (one row per doc)."""
        return [[extracted] for extracted in self._extract_many(batch)]

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        """Index a trajectory under ``trajectory_id``.

        Re-adding an existing identifier raises: updates should go through
        :meth:`remove` first, mirroring the immutable-segment behaviour of
        real search engines.
        """
        if trajectory_id in self._id_to_internal:
            raise KeyError(f"trajectory {trajectory_id!r} already indexed")
        variants = self._extract_variants(points)
        self._bulk_insert(
            [
                (
                    trajectory_id,
                    variants,
                    list(points) if self._store_points else None,
                )
            ]
        )

    def _bulk_insert(
        self,
        rows: Sequence[
            tuple[
                Hashable,
                Sequence[tuple[Sequence[int], RoaringBitmap | Roaring64Map]],
                list[Point] | None,
            ]
        ],
    ) -> None:
        """Allocate slots and insert postings for pre-extracted documents.

        Each row carries one ``(terms, bitmap)`` pair per registered
        variant, aligned with :attr:`variant_names`.  Postings are
        grouped per term across the whole batch first, so a term shared
        by many documents costs one dictionary probe instead of one per
        document.  Callers validate identifiers beforehand
        (``SlotArena.check_new_ids``); insertion itself cannot fail partway.
        """
        grouped: dict[str, dict[int, list[int]]] = {
            name: {} for name in self._variant_names
        }
        for trajectory_id, variants, points in rows:
            bitmaps = [bitmap for _, bitmap in variants]
            internal = self._arena.allocate(
                trajectory_id,
                bitmaps[0],
                points,
                *bitmaps[1:],
                cardinality=[len(bitmap) for bitmap in bitmaps],
            )
            for name, (terms, _) in zip(self._variant_names, variants):
                variant_group = grouped[name]
                for term in terms:
                    bucket = variant_group.get(term)
                    if bucket is None:
                        variant_group[term] = [internal]
                    else:
                        bucket.append(internal)
        for name, variant_group in grouped.items():
            self._variant_postings[name].extend_grouped(variant_group)

    def add_many(
        self, items: Iterable[tuple[Hashable, Trajectory]]
    ) -> None:
        """Index a batch of ``(trajectory_id, points)`` pairs.

        Terms are extracted for the whole batch up front (vectorized by
        the geodab subclass, once per registered variant), identifiers
        are validated against the live index *and* within the batch
        before any mutation, and postings are inserted in one grouped
        pass per variant.
        """
        items = list(items)
        if not items:
            return
        self._arena.check_new_ids(trajectory_id for trajectory_id, _ in items)
        extracted = self._extract_variants_many([points for _, points in items])
        self._bulk_insert(
            [
                (
                    trajectory_id,
                    variants,
                    list(points) if self._store_points else None,
                )
                for (trajectory_id, points), variants in zip(items, extracted)
            ]
        )

    def remove(self, trajectory_id: Hashable) -> None:
        """Remove a trajectory from the index (from every variant)."""
        internal = self._id_to_internal.get(trajectory_id)
        if internal is None:
            raise KeyError(f"trajectory {trajectory_id!r} not indexed")
        tombstones = []
        for name in self._variant_names:
            bitmaps = self._variant_bitmaps[name]
            store = self._variant_postings[name]
            for term in bitmaps[internal]:
                store.discard(int(term), internal)
            tombstones.append(type(bitmaps[internal])())
        # Tombstone the slot and recycle it for a future add.
        self._arena.release(
            trajectory_id, tombstones[0], None, *tombstones[1:]
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
        *,
        spec: QuerySpec | None = None,
    ) -> list[SearchResult]:
        """Ranked retrieval: trajectories within ``max_distance``, sorted.

        Implements the problem statement of Section II-B1: results are
        ordered by increasing Jaccard distance to the query; ties break by
        identifier for determinism.  Pass ``spec`` for the structured
        surface — an exact-mode spec routes through the tiered pipeline
        (Jaccard retrieve, exact re-rank) of :meth:`query_prepared`.
        """
        if spec is not None:
            prepared = self.prepare_query(points, variant=spec.variant)
            results, _ = self.query_prepared(
                prepared, spec=spec, query_points=points
            )
            return results
        results, _ = self.query_with_stats(points, limit, max_distance)
        return results

    def query_with_stats(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], QueryStats]:
        """Like :meth:`query` but also reports the work performed."""
        terms, query_bitmap = self._extract(points)
        return self.query_terms(terms, query_bitmap, limit, max_distance)

    def query_terms(
        self,
        terms: Sequence[int],
        query_bitmap: RoaringBitmap | Roaring64Map,
        limit: int | None = None,
        max_distance: float = 1.0,
        plan: str = "off",
    ) -> tuple[list[SearchResult], QueryStats]:
        """Ranked retrieval from already-extracted query terms.

        The serving tier caches extracted fingerprints and calls this
        directly so a cached query skips re-normalization and winnowing.
        Candidate collection is columnar: one concatenated hit stream,
        one ``np.unique`` for the shared-term counts; ranking is the
        shared vectorized engine (:mod:`repro.core.scoring`) — per-slot
        cardinalities turn the shared-term counts into exact Jaccard
        distances with zero bitmap intersections, and the tombstone
        guard is one boolean mask over the cardinality column.

        ``terms`` are deduplicated up front: the count-based identity
        needs one hit-stream entry per *distinct* shared term, so a
        caller passing repeats would otherwise inflate the intersection
        counts past the union (the internal paths always pass distinct
        terms; this guards the public surface).

        ``plan="auto"`` runs bounded candidate collection
        (:mod:`repro.core.planner`) when a ``limit`` or a
        ``max_distance`` below 1.0 gives the planner a threshold to
        feed back; answers are bit-identical to the default exhaustive
        path, which remains the oracle.
        """
        distinct = sorted(set(terms))
        assert self._arena.cardinalities is not None
        cards = self._arena.cardinalities.view()
        if plan == "auto" and query_planner.plannable(limit, max_distance):
            matches, planned = query_planner.collect_planned(
                query_planner.StoreSource(self._postings),
                distinct,
                len(query_bitmap),
                cards,
                limit,
                max_distance,
            )
        else:
            matches = merge_hits([self._postings.hits(distinct)])
            planned = query_planner.EMPTY_PLAN
        returned, scoring = rank_candidates(
            matches,
            cards,
            self._ids,
            len(query_bitmap),
            limit,
            max_distance,
        )
        stats = QueryStats(
            query_terms=len(distinct),
            candidates=scoring.candidates,
            scored=scoring.scored,
            returned=len(returned),
            pruned=scoring.pruned,
            terms_skipped=planned.terms_skipped,
            postings_skipped=planned.postings_skipped,
            postings_bytes_avoided=planned.postings_bytes_avoided,
            collection_cut=planned.collection_cut,
        )
        return returned, stats

    # ------------------------------------------------------------------
    # Prepared-query surface (the serving tier's fan-out protocol)
    #
    # A single-node index is a cluster with one logical shard: ``plan``
    # routes every term to shard 0, and the shard_partial/score_matches
    # decomposition matches ShardedGeodabIndex exactly, so IndexService
    # and QueryExecutor serve both backends through one code path.
    # ------------------------------------------------------------------

    def query_prepared(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
        *,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
    ) -> tuple[list[SearchResult], FanoutStats]:
        """Execute a prepared query (same contract as the sharded index).

        ``trace`` receives the ``fanout``/``merge``/``rank`` stage
        timings (a single-node fan-out is one shard 0 contact); the
        default null sink makes the instrumentation free.

        When ``spec`` is given it supersedes ``limit``/``max_distance``:
        the Jaccard tier runs with the spec's tier-1 parameters
        (``limit * overfetch`` candidates, no Jaccard cutoff for exact
        modes) and an exact-mode spec then re-ranks the candidates with
        the exact metric over ``query_points`` (required), recorded as a
        ``rerank`` stage.

        With ``spec.plan == "auto"`` (the default) candidate collection
        is bounded by the WAND-style planner whenever the tier-1
        parameters give it a threshold; the ``fanout``/``merge`` stages
        are then replaced by one ``collect`` stage.  ``plan="off"``
        keeps the exhaustive path (the bit-identity oracle).
        """
        if spec is not None:
            limit = spec.tier1_limit
            max_distance = spec.tier1_max_distance
            if spec.is_exact and not self._store_points:
                raise ExactSearchUnsupported(
                    "exact queries need stored trajectories; this index "
                    "was built with store_points=False"
                )
        if (
            spec is not None
            and spec.plan == "auto"
            and query_planner.plannable(limit, max_distance)
        ):
            collect_start = trace.now()
            matches, planned = self.collect_planned(
                prepared, limit, max_distance
            )
            collect_end = trace.now()
            returned, scoring = self.rank_matches(
                prepared, matches, limit, max_distance
            )
            rank_end = trace.now()
            trace.stage(
                "collect",
                collect_start,
                collect_end,
                terms_skipped=planned.terms_skipped,
                postings_skipped=planned.postings_skipped,
                cut=planned.collection_cut,
            )
            trace.stage("rank", collect_end, rank_end)
        else:
            planned = query_planner.EMPTY_PLAN
            fanout_start = trace.now()
            partials = [
                self.shard_partial(shard_id, shard_terms, prepared.variant)
                for shard_id, shard_terms in prepared.plan.items()
            ]
            fanout_end = trace.now()
            matches = merge_hits(partials)
            merge_end = trace.now()
            returned, scoring = self.rank_matches(
                prepared, matches, limit, max_distance
            )
            rank_end = trace.now()
            trace.stage("fanout", fanout_start, fanout_end, shards=len(partials))
            trace.stage("merge", fanout_end, merge_end)
            trace.stage("rank", merge_end, rank_end)
        stats = self.fanout_stats(prepared, matches, scoring, planner=planned)
        if spec is not None and spec.is_exact:
            if query_points is None:
                raise ValueError("exact queries require query_points")
            rerank_start = trace.now()
            returned, rerank = rerank_candidates(
                query_points, returned, spec, self.points_of
            )
            trace.stage(
                "rerank",
                rerank_start,
                trace.now(),
                candidates=rerank.candidates,
                pruned=rerank.pruned,
            )
            stats = replace(stats, pruned=stats.pruned + rerank.pruned)
        return returned, stats

    def collect_planned(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[MatchCounts, PlannerStats]:
        """Bounded candidate collection over this backend's postings.

        Drop-in replacement for the fanout+merge pair: returns the same
        ``(internal_ids, counts)`` table for every trajectory that can
        appear in the final ranking (see :mod:`repro.core.planner` for
        the proof sketch), plus the planner's work accounting.
        """
        store = self._variant_store(prepared.variant)
        return query_planner.collect_planned(
            query_planner.StoreSource(store),
            prepared.terms,
            len(prepared.query_bitmap),
            self.variant_cardinalities(prepared.variant),
            limit,
            max_distance,
        )

    def variant_cardinalities(self, variant: str) -> np.ndarray:
        """Read-only per-slot cardinality view (negative = tombstone).

        The coordinator-side input the query planner's threshold needs;
        part of the prepared-query protocol both backends share.
        """
        return self._variant_cardinalities(variant).view()

    def shard_partial(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> np.ndarray:
        """The single shard's partial result: the raw hit stream.

        One internal id per (query term, posting) pairing, produced by
        concatenating the term postings arrays of the named variant; the
        coordinator turns multiplicity into shared-term counts via
        :func:`merge_hits`.
        """
        if shard_id != 0:
            raise ValueError(f"single-node index has only shard 0, got {shard_id}")
        return self._variant_store(variant).hits(terms)

    def shard_postings(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> dict[int, np.ndarray]:
        """Raw postings for ``terms`` (term -> sorted internal-id array).

        Serves the micro-batching executor, which fetches the union of a
        batch's terms once and splits per-query partials back out.  The
        arrays are read-only views of index state.
        """
        if shard_id != 0:
            raise ValueError(f"single-node index has only shard 0, got {shard_id}")
        return self._variant_store(variant).postings_map(terms)

    def shard_term_counts(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> np.ndarray:
        """Document frequency per term (``int64``, 0 when absent).

        The query planner's first scatter: dfs decide the rarest-first
        open order and cost nothing beyond a dictionary probe per term
        (no fold, no postings touched).
        """
        if shard_id != 0:
            raise ValueError(f"single-node index has only shard 0, got {shard_id}")
        return self._variant_store(variant).term_counts(terms)

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        """Count ``terms``' postings hits against a sorted id table.

        The planner's completion scatter: after the top-k cut, the
        remaining (frequent) terms only update counts for candidates
        already materialized — postings for anything else are skipped,
        and the skip count is returned for the planner accounting.
        """
        if shard_id != 0:
            raise ValueError(f"single-node index has only shard 0, got {shard_id}")
        return query_planner.complete_counts(
            self._variant_store(variant), terms, candidates
        )

    def rank_matches(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], ScoringStats]:
        """Rank merged candidates through the shared vectorized engine.

        This is the one scoring entry point every query path uses —
        sequential, pooled, and micro-batched execution all end here, so
        they rank identically by construction.  The cardinality column
        is the one of the variant the query was prepared under.
        """
        return rank_candidates(
            matches,
            self._variant_cardinalities(prepared.variant).view(),
            self._ids,
            len(prepared.query_bitmap),
            limit,
            max_distance,
        )

    def score_matches(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """Rank merged candidates by Jaccard distance (results only)."""
        return self.rank_matches(prepared, matches, limit, max_distance)[0]

    def score_matches_scalar(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """The retired per-candidate bitmap loop (test/bench oracle).

        One bitmap intersection per candidate — kept so property tests
        can assert rank/distance/tie-break identity with the vectorized
        engine and ``bench_scoring.py`` can measure the speedup.  Not
        called by any serving path.
        """
        bitmaps = self._variant_bitmaps.get(prepared.variant)
        if bitmaps is None:
            raise UnknownVariant(prepared.variant, self._variant_names)
        return rank_candidates_scalar(
            matches,
            bitmaps,
            self._ids,
            prepared.query_bitmap,
            limit,
            max_distance,
        )

    def _live_candidates(self, internals: np.ndarray) -> int:
        """Merged candidates that reference live (non-tombstoned) slots.

        ``len(internals)`` would count dead slots reachable through stale
        hit streams, drifting the Figure-14 work numbers after removals;
        both backends report this filtered count instead (one shared
        mask over the cardinality column).
        """
        assert self._arena.cardinalities is not None
        return live_candidates(self._arena.cardinalities.view(), internals)

    def fanout_stats(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        scoring: ScoringStats | None = None,
        planner: PlannerStats | None = None,
    ) -> FanoutStats:
        """Fan-out accounting (one shard on one node, when contacted).

        Pass the :class:`ScoringStats` of the ranking pass when one was
        performed — the live-candidate count is reused instead of
        recomputed and the ``pruned`` counter rides along.  Pass the
        :class:`PlannerStats` of a planned collection so its quartet of
        counters rides along too.
        """
        contacted = len(prepared.plan)
        planned = planner if planner is not None else query_planner.EMPTY_PLAN
        return FanoutStats(
            query_terms=len(prepared.terms),
            shards_contacted=contacted,
            nodes_contacted=min(contacted, 1),
            candidates=(
                scoring.candidates
                if scoring is not None
                else self._live_candidates(matches[0])
            ),
            pruned=scoring.pruned if scoring is not None else 0,
            terms_skipped=planned.terms_skipped,
            postings_skipped=planned.postings_skipped,
            postings_bytes_avoided=planned.postings_bytes_avoided,
            collection_cut=planned.collection_cut,
        )

    def candidates(self, points: Trajectory) -> set[Hashable]:
        """Identifiers sharing at least one term with the query.

        This is the raw Step-1 candidate set a spatial index would hand to
        the expensive Step-2 distance computation; Figure 14 measures how
        its size differs between geodab and geohash terms.
        """
        terms, _ = self._extract(points)
        internals, _ = merge_hits([self._postings.hits(terms)])
        return {
            self._ids[i]
            for i in internals.tolist()
            if self._ids[i] is not TOMBSTONE
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Fold pending append buffers into the sorted postings arrays.

        Reader-safe — the serving tier's compaction policy runs this
        under a *read* lock, off the write path.  Covers every variant's
        store.
        """
        for store in self._variant_postings.values():
            store.compact_all()

    @property
    def buffered_postings(self) -> int:
        """Postings awaiting compaction (the compaction-policy trigger)."""
        return sum(
            store.buffered_postings
            for store in self._variant_postings.values()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_internal)

    def __contains__(self, trajectory_id: Hashable) -> bool:
        return trajectory_id in self._id_to_internal

    def term_set(self, trajectory_id: Hashable) -> RoaringBitmap | Roaring64Map:
        """Stored term bitmap of an indexed trajectory."""
        return self._term_sets[self._id_to_internal[trajectory_id]]

    @property
    def store_points(self) -> bool:
        """Whether raw trajectories are retained for exact re-ranking."""
        return self._store_points

    def points_of(self, trajectory_id: Hashable) -> list[Point]:
        """Stored raw points (requires ``store_points=True``)."""
        if not self._store_points:
            raise RuntimeError("index was built with store_points=False")
        points = self._points[self._id_to_internal[trajectory_id]]
        assert points is not None
        return points

    def stats(self) -> IndexStats:
        """Index shape statistics."""
        return IndexStats(
            trajectories=len(self._id_to_internal),
            terms=len(self._postings),
            postings=self._postings.num_postings,
        )

    def variant_shapes(self) -> dict[str, dict]:
        """Per-variant term/posting counts (``GET /stats``, ``/metrics``)."""
        return {
            name: {
                "terms": len(store),
                "postings": store.num_postings,
            }
            for name, store in self._variant_postings.items()
        }

    def describe(self) -> dict:
        """Backend-agnostic shape summary (the ``GET /stats`` payload)."""
        shape = self.stats()
        return {
            "kind": "single",
            "trajectories": shape.trajectories,
            "terms": shape.terms,
            "postings": shape.postings,
            "variants": self.variant_shapes(),
        }

    def postings_for(self, term: int) -> list[Hashable]:
        """Identifiers in a term's postings list (diagnostics)."""
        postings = self._postings.get(term)
        if postings is None:
            return []
        return [self._ids[i] for i in postings.tolist()]

    def iter_terms(self) -> Iterable[int]:
        """All distinct terms of the dictionary."""
        return iter(self._postings)


class GeodabIndex(TrajectoryInvertedIndex):
    """The paper's trajectory index: winnowed geodabs as terms.

    An optional ``normalizer`` is applied to every trajectory (both at
    indexing and at query time), keeping the normalization choice local to
    the index as Section V prescribes.
    """

    def __init__(
        self,
        config: GeodabConfig | GeodabScheme | Fingerprinter | None = None,
        normalizer: Normalizer | None = None,
        store_points: bool = False,
        variants: Sequence[VariantSpec] = (),
    ) -> None:
        if isinstance(config, Fingerprinter):
            self.fingerprinter = config
        else:
            self.fingerprinter = Fingerprinter(config)
        #: The registry of fingerprint variants this index serves.  The
        #: ``default`` entry is the base config; ``variants`` adds named
        #: extras (each independently indexed, selected per query).
        self.registry = FingerprintRegistry(self.fingerprinter.config, variants)
        super().__init__(
            store_points=store_points, variant_names=self.registry.names
        )
        # One fingerprint pipeline per variant; the default shares the
        # base Fingerprinter so scalar callers see identical objects.
        self._fingerprinters: dict[str, Fingerprinter] = {
            DEFAULT_VARIANT: self.fingerprinter
        }
        for name in self.registry.extra_names:
            self._fingerprinters[name] = Fingerprinter(self.registry.config(name))
        self.normalizer = normalizer
        self._fingerprint_sets: dict[Hashable, FingerprintSet] = {}

    @property
    def config(self) -> GeodabConfig:
        """The fingerprinting configuration."""
        return self.fingerprinter.config

    def resolve_variant(self, name: str = DEFAULT_VARIANT) -> str:
        """Registry resolution: ``auto`` picks the densest variant."""
        return self.registry.resolve(name)

    def _extract(self, points: Trajectory) -> tuple[
        list[int], RoaringBitmap | Roaring64Map
    ]:
        if self.normalizer is not None:
            points = self.normalizer(points)
        fingerprint_set = self.fingerprinter.fingerprint(points)
        self._last_fingerprint_set = fingerprint_set
        terms = sorted(set(fingerprint_set.values))
        return terms, fingerprint_set.bitmap

    def _extract_variants(
        self, points: Trajectory
    ) -> list[tuple[list[int], RoaringBitmap | Roaring64Map]]:
        if self.normalizer is not None:
            points = self.normalizer(points)
        out = []
        for name in self._variant_names:
            fingerprint_set = self._fingerprinters[name].fingerprint(points)
            if name == DEFAULT_VARIANT:
                self._last_fingerprint_set = fingerprint_set
            out.append(
                (sorted(set(fingerprint_set.values)), fingerprint_set.bitmap)
            )
        return out

    def _extract_variants_many(
        self, batch: Sequence[Trajectory]
    ) -> list[list[tuple[list[int], RoaringBitmap | Roaring64Map]]]:
        per_variant = self.fingerprint_variants_many(batch)
        rows: list[list[tuple[list[int], RoaringBitmap | Roaring64Map]]] = []
        for doc in range(len(batch)):
            rows.append(
                [
                    (
                        sorted(set(per_variant[name][doc].values)),
                        per_variant[name][doc].bitmap,
                    )
                    for name in self._variant_names
                ]
            )
        return rows

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        super().add(trajectory_id, points)
        # _extract_variants ran inside add; retain the full selection
        # order for motif discovery over indexed trajectories.
        self._fingerprint_sets[trajectory_id] = self._last_fingerprint_set

    def fingerprint_many(
        self, trajectories: Iterable[Trajectory]
    ) -> list[FingerprintSet]:
        """Fingerprints of a batch under this index's normalization.

        When the configured normalizer has a vectorized counterpart
        (grid snap, smoothing, decimation, and compositions thereof) the
        whole batch is normalized *and* fingerprinted as numpy sweeps
        over one concatenated point array; arbitrary callables fall back
        to per-trajectory normalization before the vectorized
        fingerprint pipeline.
        """
        return self.fingerprinter.fingerprint_normalized_many(
            self.normalizer, trajectories
        )

    def fingerprint_variants_many(
        self, trajectories: Iterable[Trajectory]
    ) -> dict[str, list[FingerprintSet]]:
        """Fingerprints of a batch under *every* registered variant.

        The batch is normalized **once** (vectorized when the
        normalizer has a columnar counterpart), then each variant's
        batch pipeline sweeps the same concatenated point array — so a
        three-variant registry costs three fingerprint passes but only
        one normalization pass.
        """
        from ..normalize.batch import normalize_point_batch

        batch = list(trajectories)
        point_batch = normalize_point_batch(self.normalizer, batch)
        if point_batch is not None:
            return {
                name: self._fingerprinters[name].fingerprint_batch(point_batch)
                for name in self._variant_names
            }
        assert self.normalizer is not None  # None always vectorizes
        normalized = [self.normalizer(points) for points in batch]
        return {
            name: self._fingerprinters[name].fingerprint_many(normalized)
            for name in self._variant_names
        }

    def add_many(
        self, items: Iterable[tuple[Hashable, Trajectory]]
    ) -> None:
        """Bulk-index ``(trajectory_id, points)`` pairs.

        The whole batch is fingerprinted by the vectorized pipeline
        (one columnar sweep per registered variant) before any mutation,
        then inserted in one grouped pass per variant.
        """
        items = list(items)
        if not items:
            return
        per_variant = self.fingerprint_variants_many(
            points for _, points in items
        )
        self.add_fingerprints_many(
            (
                trajectory_id,
                {
                    name: per_variant[name][doc]
                    for name in self._variant_names
                },
                points,
            )
            for doc, (trajectory_id, points) in enumerate(items)
        )

    def remove(self, trajectory_id: Hashable) -> None:
        super().remove(trajectory_id)
        self._fingerprint_sets.pop(trajectory_id, None)

    def fingerprint_set(self, trajectory_id: Hashable) -> FingerprintSet:
        """Ordered fingerprint set of an indexed trajectory."""
        return self._fingerprint_sets[trajectory_id]

    def _coerce_variant_sets(
        self, fingerprints: "FingerprintSet | dict[str, FingerprintSet]"
    ) -> dict[str, FingerprintSet]:
        """Normalize an insert's fingerprints to one set per variant.

        A bare :class:`FingerprintSet` means "the default variant" —
        valid only on a single-variant registry (a multi-variant index
        cannot invent the missing variants from a default-only insert,
        and silently indexing partial variants would corrupt queries).
        """
        if isinstance(fingerprints, FingerprintSet):
            fingerprints = {DEFAULT_VARIANT: fingerprints}
        missing = [
            name for name in self._variant_names if name not in fingerprints
        ]
        if missing:
            raise ValueError(
                f"missing fingerprints for variant(s) {missing!r}; this "
                f"index registers {list(self._variant_names)!r}"
            )
        unknown = set(fingerprints) - set(self._variant_names)
        if unknown:
            raise UnknownVariant(sorted(unknown)[0], self._variant_names)
        return dict(fingerprints)

    def add_fingerprints(
        self,
        trajectory_id: Hashable,
        fingerprint_set: "FingerprintSet | dict[str, FingerprintSet]",
        points: Trajectory | None = None,
    ) -> None:
        """Insert a document from precomputed fingerprints.

        Used by :mod:`repro.core.persistence` to rebuild an index without
        re-normalizing and re-winnowing, and by the serving tier to keep
        fingerprinting (pure CPU, config-only) outside its write lock.
        A multi-variant index takes a ``{variant: FingerprintSet}``
        mapping covering every registered variant.  Raw ``points`` are
        stored only when given *and* the index was built with
        ``store_points=True``.
        """
        self.add_fingerprints_many([(trajectory_id, fingerprint_set, points)])

    def add_fingerprints_many(
        self,
        entries: Iterable[
            tuple[
                Hashable,
                "FingerprintSet | dict[str, FingerprintSet]",
                Trajectory | None,
            ]
        ],
    ) -> None:
        """Bulk insert from precomputed fingerprints, all-or-nothing.

        The serving tier fingerprints whole batches outside its write
        lock and applies them here under one acquisition; identifiers
        are validated (against the index and within the batch) before
        any mutation, so a rejected batch leaves no partial state.
        """
        entries = list(entries)
        if not entries:
            return
        coerced = [
            (trajectory_id, self._coerce_variant_sets(fingerprints), points)
            for trajectory_id, fingerprints, points in entries
        ]
        self._arena.check_new_ids(
            trajectory_id for trajectory_id, _, _ in coerced
        )
        self._bulk_insert(
            [
                (
                    trajectory_id,
                    [
                        (
                            sorted(set(sets[name].values)),
                            sets[name].bitmap,
                        )
                        for name in self._variant_names
                    ],
                    list(points)
                    if self._store_points and points is not None
                    else None,
                )
                for trajectory_id, sets, points in coerced
            ]
        )
        for trajectory_id, sets, _ in coerced:
            self._fingerprint_sets[trajectory_id] = sets[DEFAULT_VARIANT]

    # Backwards-compatible name used by repro.core.persistence.
    _restore_document = add_fingerprints

    def fingerprint_query(
        self, points: Trajectory, variant: str = DEFAULT_VARIANT
    ) -> FingerprintSet:
        """Fingerprints of a query under this index's normalization."""
        variant = self.resolve_variant(variant)
        if self.normalizer is not None:
            points = self.normalizer(points)
        return self._fingerprinters[variant].fingerprint(points)

    def _plan_query(
        self, fingerprint_set: FingerprintSet, variant: str = DEFAULT_VARIANT
    ) -> PreparedQuery:
        """Plan a fingerprinted query's (single-shard) contact."""
        terms = tuple(sorted(set(fingerprint_set.values)))
        plan = {0: list(terms)} if terms else {}
        return PreparedQuery(fingerprint_set, terms, plan, variant)

    def prepare_query(
        self, points: Trajectory, variant: str = DEFAULT_VARIANT
    ) -> PreparedQuery:
        """Fingerprint a query and plan its (single-shard) contact.

        ``variant`` selects the fingerprint pipeline (``auto`` resolves
        to the densest registered variant); the returned prepared query
        carries the resolved name so execution reads that variant's
        postings.
        """
        variant = self.resolve_variant(variant)
        return self._plan_query(
            self.fingerprint_query(points, variant), variant
        )

    def prepare_query_many(
        self, queries: Sequence[Trajectory], variant: str = DEFAULT_VARIANT
    ) -> list[PreparedQuery]:
        """Prepare a burst of queries in one columnar pass.

        The whole burst is normalized and fingerprinted by the
        vectorized batch pipeline (one concatenated numpy sweep instead
        of one scalar pipeline run per query) and each result is planned
        exactly like :meth:`prepare_query` — the prepared queries are
        interchangeable with the per-query path, which the property
        tests assert.
        """
        variant = self.resolve_variant(variant)
        return [
            self._plan_query(fingerprint_set, variant)
            for fingerprint_set in self._fingerprinters[
                variant
            ].fingerprint_normalized_many(self.normalizer, queries)
        ]
