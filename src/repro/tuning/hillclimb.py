"""Hill-climbing configuration search (paper Section VI-A2, future work).

The paper tunes the normalization depth, ``k`` and ``t`` by hand and
notes: "Automating the discovery of the appropriate parameters is a
difficult task ... A hill-climbing strategy could probably be used to
address this problem, and this might be part of our future work."

This module implements that strategy: starting from a seed
configuration, it evaluates neighbouring configurations (depth +-2,
k +-1, t +-2 — the quantization of the paper's own sweeps) on a sample
workload, moves to the best neighbour while it improves, and stops at a
local optimum.  Each evaluation builds a throwaway index and scores the
sample queries with mean average precision, exactly the "build and query
an index per configuration" cost the paper warns about — which is why
the sample dataset should be small.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..core.config import GeodabConfig
from ..core.index import GeodabIndex
from ..geo.geohash import MAX_DEPTH
from ..ir.metrics import average_precision
from ..normalize import MovingAverageSmoother, GridNormalizer, compose
from ..workload.dataset import TrajectoryDataset

__all__ = ["EvaluatedConfig", "HillClimbResult", "evaluate_config", "hill_climb"]


@dataclass(frozen=True, slots=True)
class EvaluatedConfig:
    """A configuration with its measured retrieval quality."""

    config: GeodabConfig
    score: float


@dataclass(slots=True)
class HillClimbResult:
    """Outcome of a hill-climbing search."""

    best: EvaluatedConfig
    steps: list[EvaluatedConfig] = field(default_factory=list)
    evaluations: int = 0

    @property
    def improved(self) -> bool:
        """Whether the search moved away from the seed configuration."""
        return len(self.steps) > 1


def evaluate_config(
    config: GeodabConfig,
    dataset: TrajectoryDataset,
    smoothing_window: int = 9,
) -> float:
    """Mean average precision of a configuration on a sample dataset.

    Builds a fresh index under the configuration's own normalization
    depth (the depth being tuned *is* the grid depth) and scores every
    query of the dataset.
    """
    if not dataset.queries:
        raise ValueError("dataset has no queries to evaluate against")
    normalizer = compose(
        MovingAverageSmoother(smoothing_window),
        GridNormalizer(config.normalization_depth),
    )
    index = GeodabIndex(config, normalizer=normalizer)
    for record in dataset.records:
        index.add(record.trajectory_id, record.points)
    scores = []
    for query in dataset.queries:
        ranked = [r.trajectory_id for r in index.query(query.points)]
        scores.append(average_precision(ranked, query.relevant_ids))
    return sum(scores) / len(scores)


def _neighbours(config: GeodabConfig) -> list[GeodabConfig]:
    """Legal one-step moves in the (depth, k, t) space."""
    out = []
    for d_depth, d_k, d_t in (
        (-2, 0, 0),
        (2, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -2),
        (0, 0, 2),
    ):
        depth = config.normalization_depth + d_depth
        k = config.k + d_k
        t = config.t + d_t
        if not 8 <= depth <= min(52, MAX_DEPTH):
            continue
        if k < 2 or t < k:
            continue
        out.append(replace(config, normalization_depth=depth, k=k, t=t))
    return out


def hill_climb(
    dataset: TrajectoryDataset,
    seed: GeodabConfig | None = None,
    max_steps: int = 20,
    evaluator: Callable[[GeodabConfig, TrajectoryDataset], float] | None = None,
) -> HillClimbResult:
    """Greedy hill climbing over (normalization_depth, k, t).

    Moves to the best-scoring neighbour while it strictly improves on the
    current configuration; every distinct configuration is evaluated at
    most once.  ``evaluator`` may replace the MAP-based default (e.g. to
    optimize PR-AUC, or to inject a cheap surrogate in tests).
    """
    if max_steps < 1:
        raise ValueError("max_steps must be positive")
    score_fn = evaluator or evaluate_config
    current = seed or GeodabConfig()
    cache: dict[GeodabConfig, float] = {}

    def score(config: GeodabConfig) -> float:
        if config not in cache:
            cache[config] = score_fn(config, dataset)
        return cache[config]

    result = HillClimbResult(
        best=EvaluatedConfig(current, score(current)),
    )
    result.steps.append(result.best)
    for _ in range(max_steps):
        candidates = [
            EvaluatedConfig(neighbour, score(neighbour))
            for neighbour in _neighbours(result.best.config)
        ]
        if not candidates:
            break
        best_neighbour = max(candidates, key=lambda e: e.score)
        if best_neighbour.score <= result.best.score:
            break
        result.best = best_neighbour
        result.steps.append(best_neighbour)
    result.evaluations = len(cache)
    return result
