"""Automated configuration search (the paper's stated future work)."""

from .hillclimb import EvaluatedConfig, HillClimbResult, evaluate_config, hill_climb

__all__ = ["EvaluatedConfig", "HillClimbResult", "evaluate_config", "hill_climb"]
