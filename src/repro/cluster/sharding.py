"""Shard and node routing for geodab terms (paper Figure 2c, Section VI-E).

Two-step placement:

1. ``shard = floor(prefix / 2^prefix_bits * num_shards)`` — geodabs whose
   geohash prefixes are adjacent on the z-order curve land on the same
   shard, preserving locality so queries touch few shards;
2. ``node = shard mod num_nodes`` — shards round-robin onto nodes,
   deliberately breaking locality so hot regions spread across the
   cluster.

Step 1 has an alternative ``"hash"`` placement: whole terms are spread
over shards by a mixing hash instead of their z-order position.  A world-scale
deployment wants ``"range"`` (queries touch few shards); a single-region
deployment on a small cluster wants ``"hash"``, because the whole region
occupies one sliver of the z-order curve and range placement would pile
every posting onto one shard.  The serving tier's fan-out benchmark runs
hash placement for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo.geohash import Geohash
from ..hashing.stable import splitmix64

__all__ = ["ShardingConfig", "ShardRouter"]

#: Term→shard placement strategies.
PLACEMENTS = ("range", "hash")


@dataclass(frozen=True, slots=True)
class ShardingConfig:
    """Cluster geometry plus the prefix→shard placement strategy."""

    num_shards: int = 128
    num_nodes: int = 10
    placement: str = "range"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if self.num_shards < self.num_nodes:
            raise ValueError("need at least one shard per node")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )


class ShardRouter:
    """Routes geodab terms (and geohash cells) to shards and nodes."""

    __slots__ = ("config", "prefix_bits", "suffix_bits", "_prefix_cells")

    def __init__(
        self, config: ShardingConfig, prefix_bits: int, suffix_bits: int
    ) -> None:
        if prefix_bits < 1:
            raise ValueError("prefix_bits must be positive")
        if suffix_bits < 0:
            raise ValueError("suffix_bits must be non-negative")
        self.config = config
        self.prefix_bits = prefix_bits
        self.suffix_bits = suffix_bits
        self._prefix_cells = 1 << prefix_bits

    # ------------------------------------------------------------------
    # Term routing
    # ------------------------------------------------------------------

    def prefix_of_term(self, term: int) -> int:
        """Geohash prefix embedded in a geodab term."""
        return term >> self.suffix_bits

    def shard_of_prefix(self, prefix: int) -> int:
        """Locality-preserving shard of a geohash prefix (range placement).

        Undefined under hash placement: terms are hashed *whole*, so the
        geodabs of one cell deliberately scatter across every shard and
        no single shard can stand for a prefix.  Raising here keeps the
        cell-level balance reports honest — they describe range-placed
        clusters only.
        """
        if self.config.placement == "hash":
            raise ValueError(
                "prefix/cell placement is undefined under hash placement: "
                "terms are hashed whole, so one cell's terms span shards"
            )
        if not 0 <= prefix < self._prefix_cells:
            raise ValueError(
                f"prefix {prefix} outside [0, 2^{self.prefix_bits})"
            )
        shard = prefix * self.config.num_shards // self._prefix_cells
        return min(shard, self.config.num_shards - 1)

    def shard_of_term(self, term: int) -> int:
        """Shard of a geodab term.

        Range placement routes by the term's geohash prefix (locality on
        the z-order curve); hash placement mixes the *whole* term, since
        a single region's terms can all share one prefix.
        """
        if self.config.placement == "hash":
            return splitmix64(term) % self.config.num_shards
        return self.shard_of_prefix(self.prefix_of_term(term))

    def shard_of_cell(self, cell: Geohash) -> int:
        """Shard of a geohash cell (aligned to the prefix depth)."""
        if cell.depth >= self.prefix_bits:
            prefix = cell.bits >> (cell.depth - self.prefix_bits)
        else:
            prefix = cell.bits << (self.prefix_bits - cell.depth)
        return self.shard_of_prefix(prefix)

    def node_of_shard(self, shard: int) -> int:
        """Locality-breaking node of a shard."""
        if not 0 <= shard < self.config.num_shards:
            raise ValueError(f"shard {shard} outside [0, {self.config.num_shards})")
        return shard % self.config.num_nodes

    def node_of_term(self, term: int) -> int:
        """Node holding a geodab term's postings."""
        return self.node_of_shard(self.shard_of_term(term))

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, terms: list[int]) -> dict[int, list[int]]:
        """Group query terms by the shard that must serve them."""
        out: dict[int, list[int]] = {}
        for term in terms:
            out.setdefault(self.shard_of_term(term), []).append(term)
        return out

    def shards_of_node(self, node: int) -> list[int]:
        """All shards assigned to a node."""
        if not 0 <= node < self.config.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.config.num_nodes})")
        return list(
            range(node, self.config.num_shards, self.config.num_nodes)
        )
