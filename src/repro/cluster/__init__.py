"""Distributed/sharded geodab index (paper Section VI-E)."""

from .cluster import FanoutStats, PreparedQuery, ShardedGeodabIndex, ShardState
from .sharding import ShardingConfig, ShardRouter
from .stats import BalanceReport, balance_report, distribute_cell_counts

__all__ = [
    "BalanceReport",
    "FanoutStats",
    "PreparedQuery",
    "ShardRouter",
    "ShardState",
    "ShardedGeodabIndex",
    "ShardingConfig",
    "balance_report",
    "distribute_cell_counts",
]
