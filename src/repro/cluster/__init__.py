"""Distributed/sharded geodab index (paper Section VI-E)."""

from .cluster import FanoutStats, ShardedGeodabIndex, ShardState
from .sharding import ShardingConfig, ShardRouter
from .stats import BalanceReport, balance_report, distribute_cell_counts

__all__ = [
    "BalanceReport",
    "FanoutStats",
    "ShardRouter",
    "ShardState",
    "ShardedGeodabIndex",
    "ShardingConfig",
    "balance_report",
    "distribute_cell_counts",
]
