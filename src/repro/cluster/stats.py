"""Cluster balance metrics (paper Figures 15-16).

Given per-cell trajectory counts (from the world model or a real dataset)
and a cluster geometry, computes how the load spreads over shards and
nodes, and summarizes the balance — the quantity Figure 16 contrasts
between 100 and 10'000 shards on a 10-node cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geo.geohash import Geohash
from .sharding import ShardingConfig, ShardRouter

__all__ = [
    "BalanceReport",
    "balance_report",
    "distribute_cell_counts",
    "request_balance",
]


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """Summary of a load distribution across cluster nodes."""

    counts: tuple[int, ...]
    total: int
    mean: float
    minimum: int
    maximum: int
    coefficient_of_variation: float

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average ratio: 1.0 is perfectly balanced."""
        if self.mean == 0:
            return 0.0
        return self.maximum / self.mean

    def as_dict(self) -> dict:
        """JSON-ready form (``GET /stats`` surfaces fan-out balance)."""
        return {
            "total": self.total,
            "mean": round(self.mean, 3),
            "min": self.minimum,
            "max": self.maximum,
            "coefficient_of_variation": round(
                self.coefficient_of_variation, 4
            ),
            "max_over_mean": round(self.max_over_mean, 4),
        }


def balance_report(counts: list[int]) -> BalanceReport:
    """Summarize a per-node load vector."""
    if not counts:
        raise ValueError("balance report of empty counts")
    total = sum(counts)
    mean = total / len(counts)
    if mean > 0:
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        cv = math.sqrt(variance) / mean
    else:
        cv = 0.0
    return BalanceReport(
        counts=tuple(counts),
        total=total,
        mean=mean,
        minimum=min(counts),
        maximum=max(counts),
        coefficient_of_variation=cv,
    )


def request_balance(
    counts: dict[int, int], size: int | None = None
) -> BalanceReport:
    """Balance of a sparse id→count map (shard contacts, worker requests).

    Densifies the map over ``0..size-1`` (``size`` defaults to one past
    the largest observed id) so never-contacted ids count as zeros —
    exactly how the serving tier's fan-out balance should read them.
    """
    if not counts and size is None:
        raise ValueError("balance report of empty counts")
    width = size if size is not None else max(counts) + 1
    if width < 1:
        raise ValueError("size must be positive")
    return balance_report([counts.get(i, 0) for i in range(width)])


def distribute_cell_counts(
    cell_counts: dict[int, int],
    prefix_bits: int,
    sharding: ShardingConfig,
) -> tuple[list[int], list[int]]:
    """Spread per-geohash-cell trajectory counts over shards and nodes.

    ``cell_counts`` maps geohash cells at depth ``prefix_bits`` (e.g. the
    16-bit cells of Figure 15) to trajectory counts.  Returns
    ``(per_shard, per_node)`` load vectors under the two-step placement of
    Figure 2c.
    """
    router = ShardRouter(sharding, prefix_bits, suffix_bits=0)
    per_shard = [0] * sharding.num_shards
    for cell_bits, count in cell_counts.items():
        if count < 0:
            raise ValueError("cell counts must be non-negative")
        shard = router.shard_of_cell(Geohash(cell_bits, prefix_bits))
        per_shard[shard] += count
    per_node = [0] * sharding.num_nodes
    for shard, count in enumerate(per_shard):
        per_node[router.node_of_shard(shard)] += count
    return per_shard, per_node
