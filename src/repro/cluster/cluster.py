"""Simulated sharded geodab index over a multi-node cluster.

An in-process model of the distributed index of Section VI-E: every shard
owns the postings of the geodab terms routed to it; shards are placed on
nodes round-robin.  Queries are planned against the router (contacting
only the shards their terms map to), partial results are merged at the
coordinator, and ranking uses the trajectory fingerprint bitmaps exactly
like the single-node index — so a sharded index returns *identical*
results, which the integration tests assert.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..core.config import GeodabConfig
from ..core.fingerprint import Fingerprinter
from ..core.index import Normalizer, SearchResult
from ..geo.point import Trajectory
from .sharding import ShardingConfig, ShardRouter

__all__ = ["FanoutStats", "ShardState", "ShardedGeodabIndex"]


@dataclass(frozen=True, slots=True)
class FanoutStats:
    """Distribution work performed by one query (Section VI-E's concern)."""

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int


@dataclass
class ShardState:
    """One shard: a postings dictionary plus load counters."""

    shard_id: int
    node_id: int
    postings: dict[int, list[int]]

    @property
    def num_terms(self) -> int:
        """Distinct terms held by this shard."""
        return len(self.postings)

    @property
    def num_postings(self) -> int:
        """Total postings entries held by this shard."""
        return sum(len(p) for p in self.postings.values())

    def trajectories(self) -> set[int]:
        """Distinct (internal) trajectory ids referenced by this shard."""
        out: set[int] = set()
        for posting in self.postings.values():
            out.update(posting)
        return out


class ShardedGeodabIndex:
    """Geodab inverted index sharded across simulated cluster nodes."""

    def __init__(
        self,
        config: GeodabConfig | None = None,
        sharding: ShardingConfig | None = None,
        normalizer: Normalizer | None = None,
    ) -> None:
        self.fingerprinter = Fingerprinter(config)
        cfg = self.fingerprinter.config
        self.sharding = sharding or ShardingConfig()
        self.router = ShardRouter(self.sharding, cfg.prefix_bits, cfg.suffix_bits)
        self.normalizer = normalizer
        self.shards: list[ShardState] = [
            ShardState(s, self.router.node_of_shard(s), {})
            for s in range(self.sharding.num_shards)
        ]
        self._ids: list[Hashable] = []
        self._id_to_internal: dict[Hashable, int] = {}
        self._bitmaps: list[RoaringBitmap | Roaring64Map] = []

    @property
    def config(self) -> GeodabConfig:
        """Fingerprinting configuration."""
        return self.fingerprinter.config

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _fingerprint(self, points: Trajectory):
        if self.normalizer is not None:
            points = self.normalizer(points)
        return self.fingerprinter.fingerprint(points)

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        """Index a trajectory, routing each term to its shard."""
        if trajectory_id in self._id_to_internal:
            raise KeyError(f"trajectory {trajectory_id!r} already indexed")
        fingerprint_set = self._fingerprint(points)
        internal = len(self._ids)
        self._ids.append(trajectory_id)
        self._id_to_internal[trajectory_id] = internal
        self._bitmaps.append(fingerprint_set.bitmap)
        for term in sorted(set(fingerprint_set.values)):
            shard = self.shards[self.router.shard_of_term(term)]
            shard.postings.setdefault(term, []).append(internal)

    def add_many(self, items: Iterable[tuple[Hashable, Trajectory]]) -> None:
        """Index a batch of ``(trajectory_id, points)`` pairs."""
        for trajectory_id, points in items:
            self.add(trajectory_id, points)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """Ranked retrieval across the cluster (same contract as single-node)."""
        results, _ = self.query_with_stats(points, limit, max_distance)
        return results

    def query_with_stats(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], FanoutStats]:
        """Query and report fan-out statistics."""
        fingerprint_set = self._fingerprint(points)
        terms = sorted(set(fingerprint_set.values))
        plan = self.router.plan(terms)
        matches: Counter[int] = Counter()
        nodes: set[int] = set()
        for shard_id, shard_terms in plan.items():
            shard = self.shards[shard_id]
            nodes.add(shard.node_id)
            for term in shard_terms:
                posting = shard.postings.get(term)
                if posting is not None:
                    matches.update(posting)
        scored: list[SearchResult] = []
        query_bitmap = fingerprint_set.bitmap
        for internal, shared in matches.items():
            distance = query_bitmap.jaccard_distance(self._bitmaps[internal])  # type: ignore[arg-type]
            if distance <= max_distance:
                scored.append(SearchResult(self._ids[internal], distance, shared))
        scored.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
        returned = scored if limit is None else scored[:limit]
        stats = FanoutStats(
            query_terms=len(terms),
            shards_contacted=len(plan),
            nodes_contacted=len(nodes),
            candidates=len(matches),
        )
        return returned, stats

    # ------------------------------------------------------------------
    # Load accounting (Figures 15-16 territory)
    # ------------------------------------------------------------------

    def shard_postings_counts(self) -> list[int]:
        """Postings entries per shard."""
        return [shard.num_postings for shard in self.shards]

    def node_postings_counts(self) -> list[int]:
        """Postings entries per node."""
        counts = [0] * self.sharding.num_nodes
        for shard in self.shards:
            counts[shard.node_id] += shard.num_postings
        return counts

    def node_trajectory_counts(self) -> list[int]:
        """Distinct trajectories referenced per node (paper Figure 16)."""
        per_node: list[set[int]] = [set() for _ in range(self.sharding.num_nodes)]
        for shard in self.shards:
            per_node[shard.node_id] |= shard.trajectories()
        return [len(s) for s in per_node]
