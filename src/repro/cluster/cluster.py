"""Simulated sharded geodab index over a multi-node cluster.

An in-process model of the distributed index of Section VI-E: every shard
owns the postings of the geodab terms routed to it; shards are placed on
nodes round-robin.  Queries are planned against the router (contacting
only the shards their terms map to), partial results are merged at the
coordinator, and ranking uses the trajectory fingerprint bitmaps exactly
like the single-node index — so a sharded index returns *identical*
results, which the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..core import planner as query_planner
from ..core.arena import CardinalityColumn, SlotArena
from ..core.config import GeodabConfig
from ..core.fingerprint import Fingerprinter, FingerprintSet
from ..core.index import Normalizer, SearchResult
from ..core.planner import PlannerStats
from ..core.postings import PostingsStore, merge_hits
from ..core.registry import (
    DEFAULT_VARIANT,
    FingerprintRegistry,
    UnknownVariant,
    VariantSpec,
)
from ..core.query import (
    NO_TRACE,
    FanoutStats,
    MatchCounts,
    PreparedQuery,
    QuerySpec,
    TraceSink,
)
from ..core.rerank import ExactSearchUnsupported, rerank_candidates
from ..core.scoring import (
    ScoringStats,
    live_candidates,
    rank_candidates,
    rank_candidates_scalar,
)
from ..geo.point import Point, Trajectory
from .sharding import ShardingConfig, ShardRouter

__all__ = [
    "FanoutStats",
    "PreparedQuery",
    "ShardState",
    "ShardedGeodabIndex",
]


@dataclass
class ShardState:
    """One shard: a columnar postings store *per variant* plus counters.

    ``postings`` is the default variant's store (the pre-registry
    surface); ``variant_postings`` maps every registered variant —
    default included — to its own store.  :meth:`attach` keeps the two
    views consistent when persistence swaps a loaded store in.
    """

    shard_id: int
    node_id: int
    postings: PostingsStore = field(default_factory=PostingsStore)
    variant_postings: dict[str, PostingsStore] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.variant_postings.setdefault(DEFAULT_VARIANT, self.postings)

    def store(self, variant: str) -> PostingsStore:
        """The named variant's postings store."""
        store = self.variant_postings.get(variant)
        if store is None:
            raise UnknownVariant(variant, tuple(self.variant_postings))
        return store

    def attach(self, variant: str, store: PostingsStore) -> None:
        """Swap a (loaded) store in, keeping the default alias in sync."""
        self.variant_postings[variant] = store
        if variant == DEFAULT_VARIANT:
            self.postings = store

    @property
    def num_terms(self) -> int:
        """Distinct terms held by this shard (default variant)."""
        return len(self.postings)

    @property
    def num_postings(self) -> int:
        """Total postings entries held by this shard (default variant)."""
        return self.postings.num_postings

    def trajectories(self) -> set[int]:
        """Distinct (internal) trajectory ids referenced by this shard."""
        return self.postings.distinct_internals()


class _ClusterSource:
    """Planner source over the router-partitioned shard stores.

    Every term lives on exactly one shard, so per-shard postings and
    dfs compose without double counting — the planner's control loop is
    oblivious to sharding and its threshold is global by construction
    (the cross-shard threshold sharing the executor's scatter path also
    relies on).
    """

    __slots__ = ("index", "variant", "plan", "_store_of")

    def __init__(
        self,
        index: "ShardedGeodabIndex",
        variant: str,
        plan: dict[int, list[int]] | None = None,
    ) -> None:
        self.index = index
        self.variant = variant
        # Term routing is reused from the prepared query when available
        # (``PreparedQuery.plan`` already groups the query's terms by
        # shard); re-hashing every term through the router costs more
        # than the postings reads saved.
        self.plan = plan
        # term -> its shard's postings store, filled by the df read
        # (the planner's first call, always over the full term set), so
        # the open/complete hot path is one dict probe per term with no
        # per-call shard grouping.
        self._store_of: dict[int, PostingsStore] = {}

    def _store_for(self, term: int) -> PostingsStore:
        store = self._store_of.get(term)
        if store is None:
            shard = self.index.router.shard_of_term(term)
            store = self.index.shards[shard].store(self.variant)
            self._store_of[term] = store
        return store

    def _grouped(self, terms: Sequence[int]) -> dict[int, list[int]]:
        grouped: dict[int, list[int]] = {}
        router = self.index.router
        for term in terms:
            grouped.setdefault(router.shard_of_term(term), []).append(term)
        return grouped

    def term_counts(self, terms: Sequence[int]) -> np.ndarray:
        # One store lookup and one batched df read per shard, not per
        # term, reusing the prepared query's routing when it covers the
        # requested terms (it always does on the query path).
        count_of: dict[int, int] = {}
        store_of = self._store_of
        grouped = self.plan if self.plan is not None else self._grouped(terms)
        for shard_id, shard_terms in grouped.items():
            store = self.index.shards[shard_id].store(self.variant)
            counts = store.term_counts(shard_terms).tolist()
            for term, count in zip(shard_terms, counts):
                count_of[term] = count
                store_of[term] = store
        try:
            return np.fromiter(
                (count_of[t] for t in terms), np.int64, count=len(terms)
            )
        except KeyError:
            # A term outside the prepared plan: route the stragglers.
            for shard_id, shard_terms in self._grouped(
                [t for t in terms if t not in count_of]
            ).items():
                store = self.index.shards[shard_id].store(self.variant)
                counts = store.term_counts(shard_terms).tolist()
                for term, count in zip(shard_terms, counts):
                    count_of[term] = count
                    store_of[term] = store
            return np.fromiter(
                (count_of[t] for t in terms), np.int64, count=len(terms)
            )

    def open_terms(self, terms: Sequence[int]) -> np.ndarray:
        store_for = self._store_for
        chunks = [
            postings
            for term in terms
            if (postings := store_for(term).get(term)) is not None
            and len(postings)
        ]
        if not chunks:
            return query_planner.EMPTY_HITS
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def complete(
        self,
        terms: Sequence[int],
        candidates: np.ndarray,
        hi: int | None = None,
    ) -> tuple[np.ndarray, int]:
        # Every term lives on exactly one shard, so per-term postings
        # concatenate into one disjoint hit stream and a single
        # vectorized count covers the whole cluster.
        store_for = self._store_for
        if not len(candidates):
            skipped = sum(
                store_for(term).term_count(term) for term in terms
            )
            return np.zeros(0, dtype=np.int64), skipped
        chunks = [
            postings
            for term in terms
            if (postings := store_for(term).get(term)) is not None
            and len(postings)
        ]
        if not chunks:
            return np.zeros(len(candidates), dtype=np.int64), 0
        stream = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return query_planner.count_hits(stream, candidates, hi)


class ShardedGeodabIndex:
    """Geodab inverted index sharded across simulated cluster nodes."""

    def __init__(
        self,
        config: GeodabConfig | None = None,
        sharding: ShardingConfig | None = None,
        normalizer: Normalizer | None = None,
        store_points: bool = False,
        variants: Sequence[VariantSpec] = (),
    ) -> None:
        self.fingerprinter = Fingerprinter(config)
        cfg = self.fingerprinter.config
        self.registry = FingerprintRegistry(cfg, variants)
        self.sharding = sharding or ShardingConfig()
        # Variants share the base config's term bit layout, so one
        # router serves every variant's terms.
        self.router = ShardRouter(self.sharding, cfg.prefix_bits, cfg.suffix_bits)
        self.normalizer = normalizer
        names = self.registry.names
        self.shards: list[ShardState] = [
            ShardState(
                s,
                self.router.node_of_shard(s),
                variant_postings={name: PostingsStore() for name in names[1:]},
            )
            for s in range(self.sharding.num_shards)
        ]
        self._fingerprinters: dict[str, Fingerprinter] = {
            DEFAULT_VARIANT: self.fingerprinter
        }
        for name in names[1:]:
            self._fingerprinters[name] = Fingerprinter(self.registry.config(name))
        # Slot recycling is shared with the single-node index via the
        # arena; the aliases index straight into its lists.  The arena
        # also maintains one per-slot cardinality column per variant for
        # the vectorized scoring engine.  Column 1 holds raw points for
        # the exact re-rank stage (``None`` per slot unless
        # ``store_points``) — the coordinator merges/ranks/re-ranks, so
        # points live here, never on the shards.  Extra variants' query
        # bitmaps occupy columns ``2 + offset``.
        self._arena = SlotArena(
            num_columns=2 + len(names) - 1,
            num_cardinality_columns=len(names),
        )
        self._ids = self._arena.ids
        self._id_to_internal = self._arena.id_to_internal
        self._bitmaps: list[RoaringBitmap | Roaring64Map] = self._arena.columns[0]
        self._points: list[list[Point] | None] = self._arena.columns[1]
        self._variant_bitmaps: dict[str, list] = {DEFAULT_VARIANT: self._bitmaps}
        self._variant_cards: dict[str, CardinalityColumn] = {
            DEFAULT_VARIANT: self._arena.cardinality_columns[0]
        }
        for offset, name in enumerate(names[1:]):
            self._variant_bitmaps[name] = self._arena.columns[2 + offset]
            self._variant_cards[name] = self._arena.cardinality_columns[1 + offset]
        self._store_points = store_points

    @property
    def config(self) -> GeodabConfig:
        """Fingerprinting configuration."""
        return self.fingerprinter.config

    @property
    def num_shards(self) -> int:
        """Shard count (the serving tier sizes its fan-out pool by it)."""
        return self.sharding.num_shards

    @property
    def variant_names(self) -> tuple[str, ...]:
        """Registered fingerprint variant names, default first."""
        return self.registry.names

    def resolve_variant(self, name: str = DEFAULT_VARIANT) -> str:
        """Registry resolution: ``auto`` picks the densest variant."""
        return self.registry.resolve(name)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _fingerprint(
        self, points: Trajectory, variant: str = DEFAULT_VARIANT
    ) -> FingerprintSet:
        if self.normalizer is not None:
            points = self.normalizer(points)
        return self._fingerprinters[variant].fingerprint(points)

    def _fingerprint_all(self, points: Trajectory) -> dict[str, FingerprintSet]:
        """One fingerprint set per registered variant (normalize once)."""
        if self.normalizer is not None:
            points = self.normalizer(points)
        return {
            name: self._fingerprinters[name].fingerprint(points)
            for name in self.registry.names
        }

    def add(self, trajectory_id: Hashable, points: Trajectory) -> None:
        """Index a trajectory, routing each term to its shard."""
        self.add_fingerprints(trajectory_id, self._fingerprint_all(points), points)

    def fingerprint_query(
        self, points: Trajectory, variant: str = DEFAULT_VARIANT
    ) -> FingerprintSet:
        """Fingerprints of a trajectory under this index's normalization."""
        return self._fingerprint(points, self.resolve_variant(variant))

    @property
    def store_points(self) -> bool:
        """Whether raw points are retained (exact re-rank requires it)."""
        return self._store_points

    def points_of(self, trajectory_id: Hashable) -> list[Point]:
        """Stored raw points (requires ``store_points=True``)."""
        if not self._store_points:
            raise RuntimeError("index was built with store_points=False")
        points = self._points[self._id_to_internal[trajectory_id]]
        assert points is not None
        return points

    def _coerce_variant_sets(
        self, fingerprints: "FingerprintSet | dict[str, FingerprintSet]"
    ) -> dict[str, FingerprintSet]:
        """Normalize an insert's fingerprints to one set per variant.

        A bare :class:`FingerprintSet` means "the default variant" —
        valid only on a single-variant registry (a multi-variant index
        cannot invent the missing variants from a default-only insert,
        and silently indexing partial variants would corrupt queries).
        """
        names = self.registry.names
        if isinstance(fingerprints, FingerprintSet):
            fingerprints = {DEFAULT_VARIANT: fingerprints}
        missing = [name for name in names if name not in fingerprints]
        if missing:
            raise ValueError(
                f"missing fingerprints for variant(s) {missing!r}; this "
                f"index registers {list(names)!r}"
            )
        unknown = set(fingerprints) - set(names)
        if unknown:
            raise UnknownVariant(sorted(unknown)[0], names)
        return dict(fingerprints)

    def add_fingerprints(
        self,
        trajectory_id: Hashable,
        fingerprint_set: "FingerprintSet | dict[str, FingerprintSet]",
        points: Trajectory | None = None,
    ) -> None:
        """Insert a document from precomputed fingerprints.

        Lets the serving tier fingerprint outside its write lock; only
        the postings insertion here needs exclusivity.  A multi-variant
        index takes a ``{variant: FingerprintSet}`` mapping covering
        every registered variant.  Raw ``points`` are stored on the
        coordinator (for the exact re-rank stage) only when given *and*
        the index was built with ``store_points=True`` — shards
        themselves never hold raw points.
        """
        self.add_fingerprints_many([(trajectory_id, fingerprint_set, points)])

    def add_fingerprints_many(
        self,
        entries: Iterable[
            tuple[
                Hashable,
                "FingerprintSet | dict[str, FingerprintSet]",
                Trajectory | None,
            ]
        ],
    ) -> None:
        """Bulk insert from precomputed fingerprints, all-or-nothing.

        Identifiers are validated (against the index and within the
        batch) before any mutation; postings are then grouped by
        ``(variant, shard)`` across the whole batch and each shard store
        is touched in one pass, with term routing computed once per
        distinct term.
        """
        entries = list(entries)
        if not entries:
            return
        names = self.registry.names
        coerced = [
            (trajectory_id, self._coerce_variant_sets(fingerprints), points)
            for trajectory_id, fingerprints, points in entries
        ]
        self._arena.check_new_ids(
            trajectory_id for trajectory_id, _, _ in coerced
        )
        # Route every term before the first allocation: term extraction
        # and routing are the only steps that can raise (e.g. a prefix
        # outside the router's universe), and raising after a slot is
        # claimed would leave a posting-less ghost document behind.
        shard_of: dict[int, int] = {}
        routed: list[list[list[int]]] = []
        for _, sets, _ in coerced:
            per_variant_terms = []
            for name in names:
                terms = sorted(set(sets[name].values))
                for term in terms:
                    if term not in shard_of:
                        shard_of[term] = self.router.shard_of_term(term)
                per_variant_terms.append(terms)
            routed.append(per_variant_terms)
        grouped: dict[str, dict[int, dict[int, list[int]]]] = {
            name: {} for name in names
        }
        for (trajectory_id, sets, points), per_variant_terms in zip(
            coerced, routed
        ):
            bitmaps = [sets[name].bitmap for name in names]
            stored = (
                list(points)
                if self._store_points and points is not None
                else None
            )
            internal = self._arena.allocate(
                trajectory_id,
                bitmaps[0],
                stored,
                *bitmaps[1:],
                cardinality=[len(bitmap) for bitmap in bitmaps],
            )
            for name, terms in zip(names, per_variant_terms):
                variant_group = grouped[name]
                for term in terms:
                    bucket = variant_group.setdefault(shard_of[term], {})
                    internals = bucket.get(term)
                    if internals is None:
                        bucket[term] = [internal]
                    else:
                        internals.append(internal)
        for name, variant_group in grouped.items():
            for shard_id, term_map in variant_group.items():
                self.shards[shard_id].store(name).extend_grouped(term_map)

    def fingerprint_many(
        self, trajectories: Iterable[Trajectory]
    ) -> list[FingerprintSet]:
        """Fingerprints of a batch under this index's normalization.

        Vectorizable normalizers run as numpy sweeps over the whole
        concatenated batch (see :mod:`repro.normalize.batch`); arbitrary
        callables fall back to per-trajectory normalization before the
        vectorized fingerprint pipeline.
        """
        return self.fingerprinter.fingerprint_normalized_many(
            self.normalizer, trajectories
        )

    def fingerprint_variants_many(
        self, trajectories: Iterable[Trajectory]
    ) -> dict[str, list[FingerprintSet]]:
        """Fingerprints of a batch under *every* registered variant.

        The batch is normalized **once** (vectorized when the
        normalizer has a columnar counterpart), then each variant's
        batch pipeline sweeps the same concatenated point array.
        """
        from ..normalize.batch import normalize_point_batch

        batch = list(trajectories)
        point_batch = normalize_point_batch(self.normalizer, batch)
        names = self.registry.names
        if point_batch is not None:
            return {
                name: self._fingerprinters[name].fingerprint_batch(point_batch)
                for name in names
            }
        assert self.normalizer is not None  # None always vectorizes
        normalized = [self.normalizer(points) for points in batch]
        return {
            name: self._fingerprinters[name].fingerprint_many(normalized)
            for name in names
        }

    def add_many(self, items: Iterable[tuple[Hashable, Trajectory]]) -> None:
        """Bulk-index ``(trajectory_id, points)`` pairs.

        The whole batch is fingerprinted by the vectorized pipeline
        (one columnar sweep per registered variant) before any mutation,
        then routed shard-by-shard in one pass.
        """
        items = list(items)
        if not items:
            return
        names = self.registry.names
        per_variant = self.fingerprint_variants_many(
            points for _, points in items
        )
        self.add_fingerprints_many(
            (
                trajectory_id,
                {name: per_variant[name][doc] for name in names},
                points,
            )
            for doc, (trajectory_id, points) in enumerate(items)
        )

    def remove(self, trajectory_id: Hashable) -> None:
        """Remove a trajectory from every shard holding its terms."""
        internal = self._id_to_internal.get(trajectory_id)
        if internal is None:
            raise KeyError(f"trajectory {trajectory_id!r} not indexed")
        tombstones = []
        for name in self.registry.names:
            bitmaps = self._variant_bitmaps[name]
            for term in bitmaps[internal]:
                shard = self.shards[self.router.shard_of_term(int(term))]
                shard.store(name).discard(int(term), internal)
            tombstones.append(type(bitmaps[internal])())
        # Tombstone the slot (every variant's column) and recycle it.
        self._arena.release(
            trajectory_id, tombstones[0], None, *tombstones[1:]
        )

    def __len__(self) -> int:
        return len(self._id_to_internal)

    def __contains__(self, trajectory_id: Hashable) -> bool:
        return trajectory_id in self._id_to_internal

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
        *,
        spec: QuerySpec | None = None,
    ) -> list[SearchResult]:
        """Ranked retrieval across the cluster (same contract as single-node)."""
        if spec is not None:
            results, _ = self.query_prepared(
                self.prepare_query(points, variant=spec.variant),
                spec=spec,
                query_points=points,
            )
            return results
        results, _ = self.query_with_stats(points, limit, max_distance)
        return results

    def query_with_stats(
        self,
        points: Trajectory,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], FanoutStats]:
        """Query and report fan-out statistics."""
        return self.query_prepared(self.prepare_query(points), limit, max_distance)

    def _plan_query(
        self, fingerprint_set: FingerprintSet, variant: str = DEFAULT_VARIANT
    ) -> PreparedQuery:
        """Plan a fingerprinted query's shard contacts."""
        terms = tuple(sorted(set(fingerprint_set.values)))
        return PreparedQuery(
            fingerprint_set, terms, self.router.plan(list(terms)), variant
        )

    def prepare_query(
        self, points: Trajectory, variant: str = DEFAULT_VARIANT
    ) -> PreparedQuery:
        """Fingerprint a query and plan its shard contacts.

        ``variant`` selects the fingerprint pipeline (``auto`` resolves
        to the densest registered variant); the returned prepared query
        carries the resolved name so execution reads that variant's
        per-shard postings.
        """
        variant = self.resolve_variant(variant)
        return self._plan_query(self._fingerprint(points, variant), variant)

    def prepare_query_many(
        self, queries: Sequence[Trajectory], variant: str = DEFAULT_VARIANT
    ) -> list[PreparedQuery]:
        """Prepare a burst of queries in one columnar pass.

        One vectorized normalize+fingerprint sweep over the concatenated
        burst, then per-query routing — interchangeable with calling
        :meth:`prepare_query` once per query (property-test asserted).
        """
        variant = self.resolve_variant(variant)
        fingerprint_sets = self._fingerprinters[
            variant
        ].fingerprint_normalized_many(self.normalizer, queries)
        return [
            self._plan_query(fingerprint_set, variant)
            for fingerprint_set in fingerprint_sets
        ]

    def query_prepared(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
        *,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
    ) -> tuple[list[SearchResult], FanoutStats]:
        """Sequential execution of a prepared query (one shard at a time).

        The pooled path in :mod:`repro.service.executor` runs the same
        :meth:`shard_partial` lookups concurrently and merges with the
        same :meth:`score_matches`, so both paths return identical
        results.  ``trace`` receives the ``fanout``/``merge``/``rank``
        stage timings (per-shard detail spans when the sink keeps
        detail); the default null sink makes the instrumentation free.

        When ``spec`` is given it supersedes ``limit``/``max_distance``;
        exact-mode specs re-rank the Jaccard tier's candidates with the
        exact metric over ``query_points`` at the coordinator (raw
        trajectories live only there, never on shards), recorded as a
        ``rerank`` stage.
        """
        if spec is not None:
            limit = spec.tier1_limit
            max_distance = spec.tier1_max_distance
            if spec.is_exact and not self._store_points:
                raise ExactSearchUnsupported(
                    "exact queries need stored trajectories; this index "
                    "was built with store_points=False"
                )
        if (
            spec is not None
            and spec.plan == "auto"
            and query_planner.plannable(limit, max_distance)
        ):
            collect_start = trace.now()
            matches, planned = self.collect_planned(
                prepared, limit, max_distance
            )
            collect_end = trace.now()
            returned, scoring = self.rank_matches(
                prepared, matches, limit, max_distance
            )
            rank_end = trace.now()
            trace.stage(
                "collect",
                collect_start,
                collect_end,
                terms_skipped=planned.terms_skipped,
                postings_skipped=planned.postings_skipped,
                cut=planned.collection_cut,
            )
            trace.stage("rank", collect_end, rank_end)
        else:
            planned = query_planner.EMPTY_PLAN
            fanout_start = trace.now()
            # Per-shard windows only surface in detail span trees; below
            # detail the loop skips its per-shard clock reads.
            shard_clock = trace if trace.detail else NO_TRACE
            timed: list[tuple[int, int, "np.ndarray", float, float]] = []
            for shard_id, shard_terms in prepared.plan.items():
                start_s = shard_clock.now()
                partial = self.shard_partial(
                    shard_id, shard_terms, prepared.variant
                )
                timed.append(
                    (
                        shard_id,
                        len(shard_terms),
                        partial,
                        start_s,
                        shard_clock.now(),
                    )
                )
            fanout_end = trace.now()
            matches = merge_hits([partial for _, _, partial, _, _ in timed])
            merge_end = trace.now()
            returned, scoring = self.rank_matches(
                prepared, matches, limit, max_distance
            )
            rank_end = trace.now()
            if trace.detail:
                fanout_id = trace.stage(
                    "fanout", fanout_start, fanout_end, shards=len(timed)
                )
                for shard_id, n_terms, _, start_s, end_s in timed:
                    trace.event(
                        "shard",
                        start_s,
                        end_s,
                        parent=fanout_id,
                        shard=shard_id,
                        terms=n_terms,
                    )
            else:
                trace.stage("fanout", fanout_start, fanout_end)
            trace.stage("merge", fanout_end, merge_end)
            trace.stage("rank", merge_end, rank_end)
        stats = self.fanout_stats(prepared, matches, scoring, planner=planned)
        if spec is not None and spec.is_exact:
            if query_points is None:
                raise ValueError("exact queries require query_points")
            rerank_start = trace.now()
            returned, rerank = rerank_candidates(
                query_points, returned, spec, self.points_of
            )
            trace.stage(
                "rerank",
                rerank_start,
                trace.now(),
                candidates=rerank.candidates,
                pruned=rerank.pruned,
            )
            stats = replace(stats, pruned=stats.pruned + rerank.pruned)
        return returned, stats

    def collect_planned(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[MatchCounts, PlannerStats]:
        """Bounded candidate collection across all shards.

        The router partitions terms across shards, so per-shard dfs and
        postings compose without double counting and the planner's
        threshold is global: one control loop opens rarest-first across
        the whole cluster regardless of term placement.
        """
        return query_planner.collect_planned(
            _ClusterSource(self, prepared.variant, prepared.plan),
            prepared.terms,
            len(prepared.query_bitmap),
            self.variant_cardinalities(prepared.variant),
            limit,
            max_distance,
        )

    def variant_cardinalities(self, variant: str) -> np.ndarray:
        """Read-only per-slot cardinality view (negative = tombstone).

        The coordinator-side input the query planner's threshold needs;
        part of the prepared-query protocol both backends share.
        """
        cards = self._variant_cards.get(variant)
        if cards is None:
            raise UnknownVariant(variant, self.registry.names)
        return cards.view()

    # ------------------------------------------------------------------
    # Per-shard partial lookups (the serving tier's fan-out unit)
    # ------------------------------------------------------------------

    def shard_partial(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> np.ndarray:
        """One shard's partial result: the raw hit stream.

        One internal id per (query term, posting) pairing — a single
        ``np.concatenate`` over the shard's term arrays for the named
        variant.  The coordinator merges hit streams and recovers
        shared-term counts with :func:`repro.core.postings.merge_hits`
        instead of looping per element.
        """
        return self.shards[shard_id].store(variant).hits(terms)

    def shard_postings(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> dict[int, np.ndarray]:
        """One shard's raw postings for ``terms`` (term -> id array).

        Used by the micro-batching executor: a single fetch over the
        union of several queries' terms is split back into per-query
        partials at the coordinator.  Arrays are read-only views.
        """
        return self.shards[shard_id].store(variant).postings_map(terms)

    def shard_term_counts(
        self, shard_id: int, terms: Sequence[int], variant: str = DEFAULT_VARIANT
    ) -> np.ndarray:
        """One shard's document frequencies for ``terms`` (fold-free).

        The planner's first scatter: dfs order the terms rarest-first
        and seed the volume accounting before any postings move.
        """
        return self.shards[shard_id].store(variant).term_counts(terms)

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        """One shard's completion counts: per-candidate hit deltas.

        Backs the planner's completion phase over a transport — only
        counts for already-materialized ``candidates`` come back, plus
        how many postings entries pointed elsewhere and were skipped.
        """
        return query_planner.complete_counts(
            self.shards[shard_id].store(variant), terms, candidates
        )

    def rank_matches(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], ScoringStats]:
        """Rank merged candidates through the shared vectorized engine.

        Identical to the single-node path by construction: both rank
        with :func:`repro.core.scoring.rank_candidates` over the same
        arena cardinality column semantics.  Ranking reads the prepared
        query's variant cardinality column so Jaccard denominators match
        the variant that produced the candidates.
        """
        cards = self._variant_cards.get(prepared.variant)
        if cards is None:
            raise UnknownVariant(prepared.variant, self.registry.names)
        return rank_candidates(
            matches,
            cards.view(),
            self._ids,
            len(prepared.query_bitmap),
            limit,
            max_distance,
        )

    def score_matches(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """Rank merged candidates exactly like the single-node index."""
        return self.rank_matches(prepared, matches, limit, max_distance)[0]

    def score_matches_scalar(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> list[SearchResult]:
        """The retired per-candidate bitmap loop (test/bench oracle)."""
        bitmaps = self._variant_bitmaps.get(prepared.variant)
        if bitmaps is None:
            raise UnknownVariant(prepared.variant, self.registry.names)
        return rank_candidates_scalar(
            matches,
            bitmaps,
            self._ids,
            prepared.query_bitmap,
            limit,
            max_distance,
        )

    def fanout_stats(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        scoring: ScoringStats | None = None,
        planner: PlannerStats | None = None,
    ) -> FanoutStats:
        """Fan-out accounting for an executed prepared query."""
        nodes = {self.shards[s].node_id for s in prepared.plan}
        if scoring is not None:
            live = scoring.candidates
        else:
            assert self._arena.cardinalities is not None
            live = live_candidates(self._arena.cardinalities.view(), matches[0])
        planned = planner if planner is not None else query_planner.EMPTY_PLAN
        return FanoutStats(
            query_terms=len(prepared.terms),
            shards_contacted=len(prepared.plan),
            nodes_contacted=len(nodes),
            candidates=live,
            pruned=scoring.pruned if scoring is not None else 0,
            terms_skipped=planned.terms_skipped,
            postings_skipped=planned.postings_skipped,
            postings_bytes_avoided=planned.postings_bytes_avoided,
            collection_cut=planned.collection_cut,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Fold every shard's append buffers, all variants (reader-safe)."""
        for shard in self.shards:
            for store in shard.variant_postings.values():
                store.compact_all()

    @property
    def buffered_postings(self) -> int:
        """Postings awaiting compaction across all shards and variants."""
        return sum(
            store.buffered_postings
            for shard in self.shards
            for store in shard.variant_postings.values()
        )

    # ------------------------------------------------------------------
    # Load accounting (Figures 15-16 territory)
    # ------------------------------------------------------------------

    def variant_shapes(self) -> dict[str, dict]:
        """Per-variant term/postings totals across all shards."""
        shapes: dict[str, dict] = {}
        for name in self.registry.names:
            terms = 0
            postings = 0
            for shard in self.shards:
                store = shard.store(name)
                terms += len(store)
                postings += store.num_postings
            shapes[name] = {"terms": terms, "postings": postings}
        return shapes

    def describe(self) -> dict:
        """Backend-agnostic shape summary (the ``GET /stats`` payload)."""
        return {
            "kind": "sharded",
            "trajectories": len(self),
            "shards": self.sharding.num_shards,
            "nodes": self.sharding.num_nodes,
            "postings": sum(self.shard_postings_counts()),
            "variants": self.variant_shapes(),
        }

    def shard_postings_counts(self) -> list[int]:
        """Postings entries per shard."""
        return [shard.num_postings for shard in self.shards]

    def node_postings_counts(self) -> list[int]:
        """Postings entries per node."""
        counts = [0] * self.sharding.num_nodes
        for shard in self.shards:
            counts[shard.node_id] += shard.num_postings
        return counts

    def node_trajectory_counts(self) -> list[int]:
        """Distinct trajectories referenced per node (paper Figure 16)."""
        per_node: list[set[int]] = [set() for _ in range(self.sharding.num_nodes)]
        for shard in self.shards:
            per_node[shard.node_id] |= shard.trajectories()
        return [len(s) for s in per_node]
