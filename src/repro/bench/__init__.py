"""Benchmark harness shared by the ``benchmarks/`` suite."""

from .report import format_table, format_value, print_table
from .runner import (
    bench_network,
    bench_scale,
    bench_workload,
    build_geodab_index,
    build_geohash_index,
    time_callable,
)

__all__ = [
    "bench_network",
    "bench_scale",
    "bench_workload",
    "build_geodab_index",
    "build_geohash_index",
    "format_table",
    "format_value",
    "print_table",
    "time_callable",
]
