"""Shared workload construction for the benchmark suite.

All figure benchmarks draw from the same scaled-down London workload; the
builders here memoize by parameters so a pytest session constructs each
workload once.  Scale defaults are chosen so the full benchmark suite
completes in minutes of pure Python while preserving the paper's
*density* (trajectories per route), which is what its comparisons hinge
on; set ``REPRO_BENCH_SCALE`` to grow everything proportionally.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from random import Random
from typing import Callable

from ..core.baseline import GeohashIndex
from ..core.config import GeodabConfig
from ..core.index import GeodabIndex
from ..normalize import standard_normalizer
from ..roadnet.generator import generate_city_network
from ..roadnet.graph import RoadNetwork
from ..roadnet.router import Route
from ..workload.dataset import TrajectoryDataset
from ..workload.trajgen import WorkloadBuilder

__all__ = [
    "bench_scale",
    "bench_network",
    "bench_workload",
    "build_geodab_index",
    "build_geohash_index",
    "time_callable",
]


def bench_scale() -> float:
    """Global scale factor for benchmark workloads (env REPRO_BENCH_SCALE)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE={raw!r} is not a number") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


@lru_cache(maxsize=4)
def bench_network(seed: int = 0, half_side_m: float = 4_330.0) -> RoadNetwork:
    """The benchmark city: ~75 km^2 of perturbed-grid London."""
    return generate_city_network(
        half_side_m=half_side_m,
        spacing_m=250.0,
        seed=seed,
    )


@lru_cache(maxsize=16)
def bench_workload(
    num_routes: int,
    per_direction: int = 10,
    num_queries: int = 0,
    seed: int = 0,
) -> TrajectoryDataset:
    """A cached dense workload of ``num_routes`` x (2 * per_direction)."""
    builder = WorkloadBuilder(bench_network(seed), seed=seed)
    return builder.build(
        num_routes,
        trajectories_per_direction=per_direction,
        num_queries=num_queries,
    )


def build_geodab_index(
    dataset: TrajectoryDataset,
    config: GeodabConfig | None = None,
    limit: int | None = None,
) -> GeodabIndex:
    """Index a dataset's records (optionally only the first ``limit``)."""
    cfg = config or GeodabConfig()
    index = GeodabIndex(cfg, normalizer=standard_normalizer(cfg.normalization_depth))
    for record in dataset.records[:limit]:
        index.add(record.trajectory_id, record.points)
    return index


def build_geohash_index(
    dataset: TrajectoryDataset,
    depth: int = 36,
    limit: int | None = None,
) -> GeohashIndex:
    """Baseline index over the same records."""
    index = GeohashIndex(depth=depth, normalizer=standard_normalizer(depth))
    for record in dataset.records[:limit]:
        index.add(record.trajectory_id, record.points)
    return index


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in milliseconds.

    Used for the figure tables, which report per-configuration timings
    outside the pytest-benchmark fixture (one fixture per test limits a
    test to a single measured series).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = (time.perf_counter() - start) * 1000.0
        if elapsed < best:
            best = elapsed
    return best
