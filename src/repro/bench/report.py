"""Plain-text reporting for the benchmark harness.

Every benchmark regenerates a paper figure as a table of rows/series; the
helpers here print them in a stable, aligned format so bench output can be
diffed across runs and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Format a titled, column-aligned table."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Print a formatted table, framed by blank lines."""
    print()
    print(format_table(title, headers, rows))
    print()
