"""HMM map matching (Newson & Krumm 2009; paper Section V-B).

Map matching snaps a noisy GPS trajectory onto the road network — the
paper's second (heavier) normalization method, N3.  The hidden states of
point ``i`` are the network nodes within ``radius_m``; emission
probability decays with the GPS offset (Gaussian, ``sigma_m``), and
transition probability decays with the difference between route distance
and great-circle distance (exponential, ``beta_m``) — vehicles rarely take
detours between consecutive one-second samples.  The Viterbi algorithm
recovers the most probable node sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..geo.point import EARTH_RADIUS_M, Point, Trajectory, haversine
from ..roadnet.graph import NodeLocator, RoadNetwork
from ..roadnet.router import bounded_dijkstra, shortest_path

__all__ = ["MatchResult", "MapMatcher"]


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one trajectory.

    ``nodes`` is the matched node sequence with consecutive duplicates
    removed; ``points`` are their positions (the normalized trajectory);
    ``matched_ratio`` is the fraction of input points that had at least
    one candidate within the search radius.
    """

    nodes: tuple[Hashable, ...]
    points: tuple[Point, ...]
    log_probability: float
    matched_ratio: float


class MapMatcher:
    """Viterbi map matcher over a road network.

    Parameters
    ----------
    network:
        The road network to match onto.
    sigma_m:
        GPS noise scale of the emission model (the paper's dataset uses
        20 m of Gaussian noise).
    beta_m:
        Scale of the exponential transition penalty on
        ``|route_distance - great_circle_distance|``.
    radius_m:
        Candidate search radius around each observation.
    max_candidates:
        Cap on candidates per observation (closest first).
    """

    def __init__(
        self,
        network: RoadNetwork,
        sigma_m: float = 20.0,
        beta_m: float = 50.0,
        radius_m: float = 120.0,
        max_candidates: int = 6,
    ) -> None:
        if sigma_m <= 0 or beta_m <= 0 or radius_m <= 0:
            raise ValueError("sigma_m, beta_m and radius_m must be positive")
        if max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        self.network = network
        self.sigma_m = sigma_m
        self.beta_m = beta_m
        self.radius_m = radius_m
        self.max_candidates = max_candidates
        self._locator = NodeLocator(network)

    # ------------------------------------------------------------------
    # Model components
    # ------------------------------------------------------------------

    def _emission_logp(self, offset_m: float) -> float:
        return -0.5 * (offset_m / self.sigma_m) ** 2

    def _transition_logp(self, route_m: float, straight_m: float) -> float:
        return -abs(route_m - straight_m) / self.beta_m

    def _candidates(self, point: Point) -> list[tuple[Hashable, float]]:
        hits = self._locator.nearby(point, self.radius_m)
        return hits[: self.max_candidates]

    def _pairwise_haversine(
        self, from_nodes: Sequence[Hashable], to_nodes: Sequence[Hashable]
    ) -> np.ndarray:
        """Great-circle distance matrix between two node sets, in meters.

        One broadcasted trig sweep over all (from, to) pairs — the same
        formula as :func:`~repro.geo.point.haversine`, which the scalar
        lattice loop used to call once per pair.
        """
        from_points = [self.network.point_of(n) for n in from_nodes]
        to_points = [self.network.point_of(n) for n in to_nodes]
        phi_f = np.radians(np.array([p.lat for p in from_points]))[:, None]
        lam_f = np.radians(np.array([p.lon for p in from_points]))[:, None]
        phi_t = np.radians(np.array([p.lat for p in to_points]))[None, :]
        lam_t = np.radians(np.array([p.lon for p in to_points]))[None, :]
        a = (
            np.sin((phi_t - phi_f) / 2.0) ** 2
            + np.cos(phi_f) * np.cos(phi_t) * np.sin((lam_t - lam_f) / 2.0) ** 2
        )
        return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(self, trajectory: Trajectory) -> MatchResult:
        """Match a trajectory; returns an empty result if nothing matches."""
        observations: list[tuple[Point, list[tuple[Hashable, float]]]] = []
        matched_points = 0
        for point in trajectory:
            candidates = self._candidates(point)
            if candidates:
                observations.append((point, candidates))
                matched_points += 1
        if not observations:
            return MatchResult((), (), -math.inf, 0.0)
        ratio = matched_points / len(trajectory) if trajectory else 0.0

        # Viterbi over the candidate lattice.
        first_point, first_candidates = observations[0]
        scores: dict[Hashable, float] = {
            node: self._emission_logp(offset)
            for node, offset in first_candidates
        }
        backpointers: list[dict[Hashable, Hashable]] = []
        for step in range(1, len(observations)):
            previous_point = observations[step - 1][0]
            point, candidates = observations[step]
            new_scores: dict[Hashable, float] = {}
            pointers: dict[Hashable, Hashable] = {}
            # Route distances from every previous state, bounded by a
            # generous multiple of the largest plausible move.
            move = haversine(previous_point, point)
            reach_bound = 3.0 * max(move, self.radius_m) + 4.0 * self.radius_m
            reachable: dict[Hashable, dict[Hashable, float]] = {}
            for previous_node in scores:
                reachable[previous_node] = bounded_dijkstra(
                    self.network, previous_node, reach_bound, weight="length"
                )
            # Vectorized lattice step: one (previous x candidate) score
            # matrix replaces the scalar double loop.  Rows follow the
            # ``scores`` insertion order and ``np.argmax`` returns the
            # first maximal row, so tie-breaking matches the scalar
            # ``score > best_score`` scan exactly.
            prev_nodes = list(scores)
            prev_scores = np.fromiter(
                scores.values(), dtype=np.float64, count=len(prev_nodes)
            )
            cand_nodes = [node for node, _ in candidates]
            offsets = np.array([offset for _, offset in candidates])
            route = np.full((len(prev_nodes), len(cand_nodes)), np.nan)
            for i, previous_node in enumerate(prev_nodes):
                distances = reachable[previous_node]
                for j, node in enumerate(cand_nodes):
                    route_m = distances.get(node)
                    if route_m is not None:
                        route[i, j] = route_m
            straight = self._pairwise_haversine(prev_nodes, cand_nodes)
            emissions = -0.5 * (offsets / self.sigma_m) ** 2
            total = (
                prev_scores[:, None]
                - np.abs(route - straight) / self.beta_m
                + emissions[None, :]
            )
            # Unreachable (previous, candidate) pairs drop out of the max.
            total = np.where(np.isnan(route), -np.inf, total)
            best_rows = np.argmax(total, axis=0)
            best_scores = total[best_rows, np.arange(len(cand_nodes))]
            for j, node in enumerate(cand_nodes):
                if math.isfinite(best_scores[j]):
                    new_scores[node] = float(best_scores[j])
                    pointers[node] = prev_nodes[best_rows[j]]
            if not new_scores:
                # Broken lattice (e.g. a gap in the network): restart the
                # chain from this observation, keeping the better half.
                new_scores = {
                    node: self._emission_logp(offset)
                    for node, offset in candidates
                }
                pointers = {}
            scores = new_scores
            backpointers.append(pointers)

        # Backtrack.
        final_node = max(scores, key=lambda n: scores[n])
        final_score = scores[final_node]
        sequence = [final_node]
        node = final_node
        for pointers in reversed(backpointers):
            previous = pointers.get(node)
            if previous is None:
                break
            sequence.append(previous)
            node = previous
        sequence.reverse()

        # Collapse consecutive duplicates; stitch gaps with road paths so
        # the normalized polyline stays on the network.
        collapsed: list[Hashable] = []
        for node in sequence:
            if not collapsed or collapsed[-1] != node:
                collapsed.append(node)
        stitched = self._stitch(collapsed)
        points = tuple(self.network.point_of(n) for n in stitched)
        return MatchResult(tuple(stitched), points, final_score, ratio)

    def _stitch(self, nodes: Sequence[Hashable]) -> list[Hashable]:
        """Insert intermediate road nodes between non-adjacent matches."""
        if len(nodes) < 2:
            return list(nodes)
        out: list[Hashable] = [nodes[0]]
        for previous, current in zip(nodes, nodes[1:]):
            adjacent = any(
                edge.target == current
                for edge in self.network.edges_from(previous)
            )
            if adjacent:
                out.append(current)
                continue
            route = shortest_path(self.network, previous, current, weight="length")
            if route is None:
                out.append(current)
            else:
                out.extend(route.nodes[1:])
        return out

    def normalize(self, trajectory: Trajectory) -> list[Point]:
        """Normalizer interface: trajectory in, matched polyline out.

        Falls back to the raw trajectory when matching fails completely,
        so indexing pipelines never lose documents.
        """
        result = self.match(trajectory)
        if not result.points:
            return list(trajectory)
        return list(result.points)
