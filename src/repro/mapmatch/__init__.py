"""HMM map matching (normalization method N3 of Section V-B)."""

from .hmm import MapMatcher, MatchResult

__all__ = ["MapMatcher", "MatchResult"]
