"""Composable normalization pipelines.

Normalization is "a function N(S) = S'" (paper Section III-A3).  Any
callable from a trajectory to a list of points qualifies; this module
provides composition and the map-matching adapter so pipelines like
``resample -> map-match -> grid`` read naturally.
"""

from __future__ import annotations

from typing import Callable

from ..geo.point import Point, Trajectory
from ..mapmatch.hmm import MapMatcher

__all__ = [
    "ComposedNormalizer",
    "MapMatchNormalizer",
    "Normalizer",
    "compose",
    "identity",
]

#: The normalization function type ``N(S) = S'``.
Normalizer = Callable[[Trajectory], list[Point]]


def identity(points: Trajectory) -> list[Point]:
    """The no-op normalization (the raw index of Figure 5a)."""
    return list(points)


class ComposedNormalizer:
    """A left-to-right chain of normalizers, introspectable by stage.

    Exposing ``stages`` (rather than closing over them) lets the batch
    pipeline map each scalar stage to its vectorized counterpart — see
    :func:`repro.normalize.batch.vectorize_normalizer` — while staying a
    plain callable normalizer everywhere else.
    """

    __slots__ = ("stages",)

    def __init__(self, stages: tuple[Normalizer, ...]) -> None:
        self.stages = stages

    def __call__(self, points: Trajectory) -> list[Point]:
        current = list(points)
        for normalize in self.stages:
            current = normalize(current)
        return current

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(stage) for stage in self.stages)
        return f"ComposedNormalizer({inner})"


def compose(*normalizers: Normalizer) -> Normalizer:
    """Chain normalizers left to right: ``compose(f, g)(S) == g(f(S))``."""
    if not normalizers:
        return identity
    return ComposedNormalizer(tuple(normalizers))


class MapMatchNormalizer:
    """Callable normalizer backed by HMM map matching (method N3).

    Thin adapter over :class:`~repro.mapmatch.hmm.MapMatcher` so a matcher
    can be dropped wherever a normalization function is expected.
    """

    __slots__ = ("matcher",)

    def __init__(self, matcher: MapMatcher) -> None:
        self.matcher = matcher

    def __call__(self, points: Trajectory) -> list[Point]:
        return self.matcher.normalize(points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MapMatchNormalizer({self.matcher.network.num_nodes} nodes)"
