"""Geohash-grid normalization (paper Section V-A).

The lightweight normalization: map every point to its geohash cell at a
constant depth, remove consecutive duplicate cells, and convert the cells
back to points (their centers).  Two noisy recordings of the same street
converge to the same cell-center sequence, which is precisely what makes
fingerprints comparable across recordings.
"""

from __future__ import annotations

from ..geo.geohash import cells_along
from ..geo.point import Point, Trajectory

__all__ = ["GridNormalizer"]


class GridNormalizer:
    """Callable normalizer: trajectory -> cell-center polyline.

    ``depth`` is the geohash depth in bits; the paper's PR-curve sweep
    (Figure 8) finds 36 optimal for its London dataset, with 32-40 bits as
    the interesting range.
    """

    __slots__ = ("depth",)

    def __init__(self, depth: int = 36) -> None:
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth

    def __call__(self, points: Trajectory) -> list[Point]:
        return [cell.center() for cell in cells_along(points, self.depth)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridNormalizer(depth={self.depth})"
