"""Noise-suppression smoothers applied before gridding.

At urban speeds a 1 Hz GPS trace moves ~10 m between samples while the
paper's dataset carries 20 m Gaussian noise per point: the raw cell
sequence at 36-bit depth is dominated by boundary "flapping", which
destroys k-gram agreement between recordings of the same route.  A short
sliding-window filter restores convergence — it plays the same role
spelling normalization plays for text (Section V's equivalence classes)
and its window is tuned exactly like the grid depth, by watching the PR
curve (Section V-C).
"""

from __future__ import annotations

from ..geo.point import Point, Trajectory

__all__ = ["MovingAverageSmoother", "MedianSmoother"]


class MovingAverageSmoother:
    """Callable normalizer: centered moving average over ``window`` samples.

    Endpoints use the available one-sided context, so trajectory length is
    preserved and the ends are not clipped.
    """

    __slots__ = ("window",)

    def __init__(self, window: int = 9) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def __call__(self, points: Trajectory) -> list[Point]:
        n = len(points)
        if n < 3 or self.window == 1:
            return list(points)
        half = self.window // 2
        # Prefix sums make the pass O(n) regardless of window size.
        lat_prefix = [0.0]
        lon_prefix = [0.0]
        for p in points:
            lat_prefix.append(lat_prefix[-1] + p.lat)
            lon_prefix.append(lon_prefix[-1] + p.lon)
        out: list[Point] = []
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            count = hi - lo
            out.append(
                Point(
                    (lat_prefix[hi] - lat_prefix[lo]) / count,
                    (lon_prefix[hi] - lon_prefix[lo]) / count,
                )
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MovingAverageSmoother(window={self.window})"


class MedianSmoother:
    """Callable normalizer: centered sliding median over ``window`` samples.

    More robust than the mean against isolated multipath outliers; often
    composed before a :class:`MovingAverageSmoother`.
    """

    __slots__ = ("window",)

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    @staticmethod
    def _median(values: list[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def __call__(self, points: Trajectory) -> list[Point]:
        n = len(points)
        if n < 3 or self.window == 1:
            return list(points)
        half = self.window // 2
        out: list[Point] = []
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            window = points[lo:hi]
            out.append(
                Point(
                    self._median([p.lat for p in window]),
                    self._median([p.lon for p in window]),
                )
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MedianSmoother(window={self.window})"
