"""Resampling normalizers: uniform spacing and decimation.

Raw GPS traces "can showcase different sampling rates" (paper Figure 4a);
resampling to a constant ground-distance step removes that variation
before gridding or map matching.
"""

from __future__ import annotations

from ..geo.point import Point, Trajectory, resample_by_distance

__all__ = ["UniformResampler", "Decimator"]


class UniformResampler:
    """Callable normalizer: resample at a constant ground-distance step."""

    __slots__ = ("step_m",)

    def __init__(self, step_m: float) -> None:
        if step_m <= 0:
            raise ValueError("step_m must be positive")
        self.step_m = step_m

    def __call__(self, points: Trajectory) -> list[Point]:
        return resample_by_distance(points, self.step_m)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformResampler(step_m={self.step_m})"


class Decimator:
    """Callable normalizer: keep every ``factor``-th point (plus the last).

    A cheap stand-in for sampling-rate reduction; used by robustness tests
    to check that fingerprint similarity degrades gracefully as the
    sampling rate drops.
    """

    __slots__ = ("factor",)

    def __init__(self, factor: int) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def __call__(self, points: Trajectory) -> list[Point]:
        if not points:
            return []
        kept = list(points[:: self.factor])
        if kept[-1] != points[-1]:
            kept.append(points[-1])
        return kept

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Decimator(factor={self.factor})"
