"""Vectorized normalization over concatenated trajectory batches.

The scalar normalizers in :mod:`repro.normalize` run per-point Python
loops; query bursts and bulk ingest normalize thousands of trajectories,
so this module re-expresses the same stages as numpy sweeps over one
concatenated coordinate batch:

* :class:`PointBatch` holds every point of a batch as parallel
  ``float64`` arrays plus per-trajectory offsets, so normalization never
  materializes intermediate :class:`~repro.geo.point.Point` objects;
* :class:`BatchGridNormalizer` snaps the *whole batch* to geohash cell
  centers in one encode/dedupe/decode pass;
* :class:`BatchMovingAverageSmoother` / :class:`BatchMedianSmoother` /
  :class:`BatchDecimator` vectorize the smoothing and resampling stages
  (prefix sums, sorted sliding windows, and index arithmetic replace the
  per-point loops);
* :func:`vectorize_normalizer` maps a scalar normalizer — including
  :func:`repro.normalize.pipeline.compose` chains — to its batch
  counterpart, or returns ``None`` for stages with no vectorized form
  (e.g. HMM map matching), in which case callers fall back to the
  scalar path.

Every discrete batch stage is *bit-identical* to its scalar counterpart
— same quantization, same sequential prefix-sum accumulation, same
midpoint arithmetic — which the hypothesis property tests assert point
by point.  The one exception is :class:`BatchUniformResampler`, whose
cumulative-length formulation reassociates the scalar path's repeated
subtraction; it is tolerance-equivalent (``math.isclose`` at 1e-9
relative) rather than bit-identical, and the property tests assert
exactly that regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..geo.batch import decode_center_batch, encode_batch
from ..geo.point import (
    EARTH_RADIUS_M,
    MAX_LATITUDE,
    MAX_LONGITUDE,
    MIN_LATITUDE,
    MIN_LONGITUDE,
    Point,
    Trajectory,
)
from .grid import GridNormalizer
from .pipeline import ComposedNormalizer, Normalizer, identity
from .resample import Decimator, UniformResampler
from .smooth import MedianSmoother, MovingAverageSmoother

__all__ = [
    "BatchDecimator",
    "BatchGridNormalizer",
    "BatchIdentity",
    "BatchMedianSmoother",
    "BatchMovingAverageSmoother",
    "BatchNormalizer",
    "BatchPipeline",
    "BatchUniformResampler",
    "PointBatch",
    "normalize_point_batch",
    "vectorize_normalizer",
]

_U = np.uint64


@dataclass(frozen=True, slots=True)
class PointBatch:
    """A batch of trajectories as concatenated coordinate columns.

    ``lats``/``lons`` are parallel ``float64`` arrays over every point of
    the batch; trajectory ``i`` owns the half-open slice
    ``bounds[i]:bounds[i+1]`` (``bounds`` has ``num_trajectories + 1``
    entries).  This is the interchange format of the columnar read path:
    batch normalizers map one ``PointBatch`` to another, and the batch
    fingerprinter consumes the final arrays directly.
    """

    lats: np.ndarray
    lons: np.ndarray
    bounds: np.ndarray

    @classmethod
    def from_trajectories(cls, trajectories: Sequence[Trajectory]) -> "PointBatch":
        """Concatenate a batch of point sequences into coordinate columns."""
        counts = np.fromiter(
            (len(t) for t in trajectories),
            dtype=np.int64,
            count=len(trajectories),
        )
        total = int(counts.sum())
        bounds = np.zeros(len(trajectories) + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        lats = np.fromiter(
            (p.lat for t in trajectories for p in t),
            dtype=np.float64,
            count=total,
        )
        lons = np.fromiter(
            (p.lon for t in trajectories for p in t),
            dtype=np.float64,
            count=total,
        )
        return cls(lats, lons, bounds)

    @classmethod
    def from_arrays(
        cls, lats: np.ndarray, lons: np.ndarray, bounds: np.ndarray
    ) -> "PointBatch":
        """Build from raw arrays, validating like ``Point`` does.

        Rejects NaN/inf and out-of-range coordinates so arrays entering
        the columnar path obey the same contract the scalar path
        enforces per :class:`~repro.geo.point.Point`.
        """
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        bounds = np.asarray(bounds, dtype=np.int64)
        if lats.shape != lons.shape:
            raise ValueError("lats and lons must be parallel arrays")
        if len(bounds) == 0 or bounds[0] != 0 or bounds[-1] != len(lats):
            raise ValueError("bounds must start at 0 and end at the point count")
        if np.any(np.diff(bounds) < 0):
            raise ValueError("bounds must be non-decreasing")
        # NaN fails both comparisons, so this also rejects non-finite
        # values — exactly the inputs Point.__post_init__ refuses.
        if not bool(
            np.all((lats >= MIN_LATITUDE) & (lats <= MAX_LATITUDE))
        ):
            raise ValueError("latitude outside [-90, 90]")
        if not bool(
            np.all((lons >= MIN_LONGITUDE) & (lons <= MAX_LONGITUDE))
        ):
            raise ValueError("longitude outside [-180, 180]")
        return cls(lats, lons, bounds)

    def __len__(self) -> int:
        """Number of trajectories in the batch."""
        return len(self.bounds) - 1

    @property
    def num_points(self) -> int:
        """Total points across the batch."""
        return len(self.lats)

    def lengths(self) -> np.ndarray:
        """Per-trajectory point counts."""
        return np.diff(self.bounds)

    def to_trajectories(self) -> list[list[Point]]:
        """Materialize back into per-trajectory ``Point`` lists."""
        lats = self.lats.tolist()
        lons = self.lons.tolist()
        out: list[list[Point]] = []
        for start, stop in zip(self.bounds[:-1], self.bounds[1:]):
            out.append(
                [Point(lats[i], lons[i]) for i in range(int(start), int(stop))]
            )
        return out


#: A batch normalization stage: ``PointBatch -> PointBatch``.
BatchNormalizer = Callable[["PointBatch"], "PointBatch"]


def _rebuild(
    batch: PointBatch, keep: np.ndarray, lats: np.ndarray, lons: np.ndarray
) -> PointBatch:
    """Assemble a new batch from a keep-mask over the old point stream."""
    kept_before = np.zeros(batch.num_points + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_before[1:])
    return PointBatch(lats[keep], lons[keep], kept_before[batch.bounds])


class BatchIdentity:
    """The no-op batch normalization (vectorized ``identity``)."""

    __slots__ = ()

    def __call__(self, batch: PointBatch) -> PointBatch:
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BatchIdentity()"


class BatchGridNormalizer:
    """Vectorized :class:`~repro.normalize.grid.GridNormalizer`.

    One encode pass snaps every point of the batch to its geohash cell,
    one boolean mask removes consecutive duplicate cells per trajectory
    (first points re-pinned so runs never merge across trajectory
    boundaries), and one decode pass converts the surviving cells to
    their centers.
    """

    __slots__ = ("depth",)

    def __init__(self, depth: int = 36) -> None:
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth

    def __call__(self, batch: PointBatch) -> PointBatch:
        total = batch.num_points
        if total == 0:
            return batch
        cells = encode_batch(batch.lats, batch.lons, self.depth)
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        np.not_equal(cells[1:], cells[:-1], out=keep[1:])
        counts = batch.lengths()
        keep[batch.bounds[:-1][counts > 0]] = True
        kept_before = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_before[1:])
        lats, lons = decode_center_batch(cells[keep], self.depth)
        return PointBatch(lats, lons, kept_before[batch.bounds])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchGridNormalizer(depth={self.depth})"


class BatchMovingAverageSmoother:
    """Vectorized :class:`~repro.normalize.smooth.MovingAverageSmoother`.

    Each trajectory's prefix sums are computed with one sequential
    ``cumsum`` (bit-identical to the scalar left-fold accumulation) and
    every window average comes from two prefix lookups.  The per-
    trajectory loop remains — prefix sums must restart at each boundary
    to stay bit-identical — but all per-point work is numpy.
    """

    __slots__ = ("window",)

    def __init__(self, window: int = 9) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def __call__(self, batch: PointBatch) -> PointBatch:
        if self.window == 1 or batch.num_points == 0:
            return batch
        half = self.window // 2
        lats = batch.lats.copy()
        lons = batch.lons.copy()
        for start, stop in zip(batch.bounds[:-1], batch.bounds[1:]):
            n = int(stop) - int(start)
            if n < 3:
                continue
            lo = np.arange(n, dtype=np.int64) - half
            np.clip(lo, 0, None, out=lo)
            hi = np.arange(n, dtype=np.int64) + (half + 1)
            np.clip(hi, None, n, out=hi)
            count = (hi - lo).astype(np.float64)
            for coords in (lats, lons):
                prefix = np.empty(n + 1, dtype=np.float64)
                prefix[0] = 0.0
                np.cumsum(coords[start:stop], out=prefix[1:])
                coords[start:stop] = (prefix[hi] - prefix[lo]) / count
        return PointBatch(lats, lons, batch.bounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchMovingAverageSmoother(window={self.window})"


class BatchMedianSmoother:
    """Vectorized :class:`~repro.normalize.smooth.MedianSmoother`.

    Interior positions sort full windows as rows of a zero-copy
    ``sliding_window_view``; the up-to ``window - 1`` clamped edge
    positions per trajectory fall back to small per-position medians.
    """

    __slots__ = ("window",)

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    @staticmethod
    def _median_sorted(ordered: np.ndarray) -> float:
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return float(ordered[mid])
        return (float(ordered[mid - 1]) + float(ordered[mid])) / 2.0

    def __call__(self, batch: PointBatch) -> PointBatch:
        if self.window == 1 or batch.num_points == 0:
            return batch
        half = self.window // 2
        # The scalar smoother's slice [i-half, i+half] always spans an
        # odd 2*half+1 points, so interior medians are a single middle
        # element; only clamped edge windows can have even length.
        full = 2 * half + 1
        lats = batch.lats.copy()
        lons = batch.lons.copy()
        for start, stop in zip(batch.bounds[:-1], batch.bounds[1:]):
            start = int(start)
            n = int(stop) - start
            if n < 3:
                continue
            for coords in (lats, lons):
                values = batch.lats if coords is lats else batch.lons
                segment = values[start : start + n]
                out = coords[start : start + n]
                if n >= full:
                    windows = np.sort(
                        np.lib.stride_tricks.sliding_window_view(segment, full),
                        axis=1,
                    )
                    out[half : n - half] = windows[:, half]
                for i in range(min(half, n)):
                    window = np.sort(segment[max(0, i - half) : i + half + 1])
                    out[i] = self._median_sorted(window)
                for i in range(max(min(half, n), n - half), n):
                    window = np.sort(segment[max(0, i - half) : i + half + 1])
                    out[i] = self._median_sorted(window)
        return PointBatch(lats, lons, batch.bounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchMedianSmoother(window={self.window})"


class BatchDecimator:
    """Vectorized :class:`~repro.normalize.resample.Decimator`.

    Pure index arithmetic: keep every ``factor``-th point per trajectory
    plus the final point when the stride did not already land on it.
    """

    __slots__ = ("factor",)

    def __init__(self, factor: int) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def __call__(self, batch: PointBatch) -> PointBatch:
        if self.factor == 1 or batch.num_points == 0:
            return batch
        total = batch.num_points
        position = np.arange(total, dtype=np.int64)
        starts = np.repeat(batch.bounds[:-1], batch.lengths())
        keep = (position - starts) % self.factor == 0
        # The scalar Decimator appends the last raw point when the kept
        # tail differs from it; "differs" is Point equality, i.e. exact
        # coordinate equality against the last *kept* point.
        lengths = batch.lengths()
        nonempty = lengths > 0
        last = batch.bounds[1:][nonempty] - 1
        last_kept_offset = ((lengths[nonempty] - 1) // self.factor) * self.factor
        last_kept = batch.bounds[:-1][nonempty] + last_kept_offset
        differs = (batch.lats[last_kept] != batch.lats[last]) | (
            batch.lons[last_kept] != batch.lons[last]
        )
        keep[last[differs]] = True
        return _rebuild(batch, keep, batch.lats, batch.lons)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchDecimator(factor={self.factor})"


def _haversine_arrays(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized haversine over parallel coordinate arrays (meters)."""
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    a = (
        np.sin((phi2 - phi1) / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin(np.radians(lon2 - lon1) / 2.0) ** 2
    )
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(a))


class BatchUniformResampler:
    """Vectorized :class:`~repro.normalize.resample.UniformResampler`.

    The scalar resampler re-walks the polyline from its head for every
    sample (``walk`` is O(n), the whole pass O(n * samples)); here each
    trajectory computes its segment lengths once, locates every sample
    offset with one ``searchsorted`` over the cumulative lengths, and
    interpolates all samples in one great-circle sweep (vectorized
    bearing + destination, the same formulas ``interpolate`` routes
    through).

    Because cumulative sums reassociate the scalar path's repeated
    subtraction, outputs are tolerance-equivalent to the scalar
    resampler (``math.isclose`` at 1e-9 relative), not bit-identical.
    """

    __slots__ = ("step_m",)

    def __init__(self, step_m: float) -> None:
        if step_m <= 0:
            raise ValueError("step_m must be positive")
        self.step_m = step_m

    def _resample_one(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(lats)
        if n <= 1:
            return lats, lons
        seg = _haversine_arrays(lats[:-1], lons[:-1], lats[1:], lons[1:])
        cum = np.empty(n, dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(seg, out=cum[1:])
        total = float(cum[-1])
        # Sample offsets step, 2*step, ... strictly inside the polyline;
        # cumsum over a constant vector reproduces the scalar loop's
        # repeated-addition sequence.
        max_samples = int(total / self.step_m) + 2
        offsets = np.cumsum(np.full(max_samples, self.step_m))
        offsets = offsets[: int(np.searchsorted(offsets, total, side="left"))]
        if len(offsets) == 0:
            out_lats = [lats[:1]]
            out_lons = [lons[:1]]
            tail_anchor = (float(lats[0]), float(lons[0]))
        else:
            # First segment index whose cumulative end reaches each
            # offset; 'left' on the strictly-greater cum value also
            # skips zero-length segments, like the scalar walk does.
            ends = np.searchsorted(cum, offsets, side="left")
            starts = ends - 1
            fraction = (offsets - cum[starts]) / seg[starts]
            a_lat, a_lon = lats[starts], lons[starts]
            b_lat, b_lon = lats[ends], lons[ends]
            # interpolate(): destination(a, bearing(a, b), dist * f).
            phi1 = np.radians(a_lat)
            phi2 = np.radians(b_lat)
            d_lambda = np.radians(b_lon - a_lon)
            theta = np.arctan2(
                np.sin(d_lambda) * np.cos(phi2),
                np.cos(phi1) * np.sin(phi2)
                - np.sin(phi1) * np.cos(phi2) * np.cos(d_lambda),
            )
            delta = seg[starts] * fraction / EARTH_RADIUS_M
            s_phi = np.arcsin(
                np.sin(phi1) * np.cos(delta)
                + np.cos(phi1) * np.sin(delta) * np.cos(theta)
            )
            s_lambda = np.radians(a_lon) + np.arctan2(
                np.sin(theta) * np.sin(delta) * np.cos(phi1),
                np.cos(delta) - np.sin(phi1) * np.sin(s_phi),
            )
            s_lat = np.clip(np.degrees(s_phi), MIN_LATITUDE, MAX_LATITUDE)
            s_lon = (np.degrees(s_lambda) + 540.0) % 360.0 - 180.0
            # Exact-endpoint samples short-circuit in scalar interpolate
            # (fraction 0 or 1 returns the vertex itself); mirror that so
            # vertices pass through untouched.
            at_start = fraction == 0.0
            at_end = fraction == 1.0
            s_lat[at_start] = a_lat[at_start]
            s_lon[at_start] = a_lon[at_start]
            s_lat[at_end] = b_lat[at_end]
            s_lon[at_end] = b_lon[at_end]
            out_lats = [lats[:1], s_lat]
            out_lons = [lons[:1], s_lon]
            tail_anchor = (float(s_lat[-1]), float(s_lon[-1]))
        tail = _haversine_arrays(
            np.asarray([tail_anchor[0]]),
            np.asarray([tail_anchor[1]]),
            lats[-1:],
            lons[-1:],
        )
        if float(tail[0]) > self.step_m / 2.0:
            out_lats.append(lats[-1:])
            out_lons.append(lons[-1:])
        return np.concatenate(out_lats), np.concatenate(out_lons)

    def __call__(self, batch: PointBatch) -> PointBatch:
        if batch.num_points == 0:
            return batch
        lat_parts: list[np.ndarray] = []
        lon_parts: list[np.ndarray] = []
        bounds = np.zeros(len(batch) + 1, dtype=np.int64)
        for i, (start, stop) in enumerate(zip(batch.bounds[:-1], batch.bounds[1:])):
            lats, lons = self._resample_one(
                batch.lats[int(start) : int(stop)],
                batch.lons[int(start) : int(stop)],
            )
            lat_parts.append(lats)
            lon_parts.append(lons)
            bounds[i + 1] = bounds[i] + len(lats)
        return PointBatch(
            np.concatenate(lat_parts), np.concatenate(lon_parts), bounds
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchUniformResampler(step_m={self.step_m})"


class BatchPipeline:
    """A left-to-right chain of batch normalization stages."""

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[BatchNormalizer]) -> None:
        self.stages = tuple(stages)

    def __call__(self, batch: PointBatch) -> PointBatch:
        for stage in self.stages:
            batch = stage(batch)
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(stage) for stage in self.stages)
        return f"BatchPipeline({inner})"


def vectorize_normalizer(
    normalizer: Normalizer | None,
) -> BatchNormalizer | None:
    """Batch counterpart of a scalar normalizer, or ``None``.

    ``None`` (no normalization) and :func:`identity` map to the no-op
    batch stage; grid snap, moving-average/median smoothing, and
    decimation map to their vectorized twins; a
    :class:`~repro.normalize.pipeline.ComposedNormalizer` vectorizes
    stage by stage.  Anything else — arbitrary callables, map matching —
    returns ``None`` and the caller keeps the scalar path.
    """
    if normalizer is None or normalizer is identity:
        return BatchIdentity()
    if isinstance(normalizer, GridNormalizer):
        return BatchGridNormalizer(normalizer.depth)
    if isinstance(normalizer, MovingAverageSmoother):
        return BatchMovingAverageSmoother(normalizer.window)
    if isinstance(normalizer, MedianSmoother):
        return BatchMedianSmoother(normalizer.window)
    if isinstance(normalizer, Decimator):
        return BatchDecimator(normalizer.factor)
    if isinstance(normalizer, UniformResampler):
        return BatchUniformResampler(normalizer.step_m)
    if isinstance(normalizer, ComposedNormalizer):
        stages = []
        for stage in normalizer.stages:
            vectorized = vectorize_normalizer(stage)
            if vectorized is None:
                return None
            stages.append(vectorized)
        return BatchPipeline(stages)
    return None


def normalize_point_batch(
    normalizer: Normalizer | None, trajectories: Sequence[Trajectory]
) -> PointBatch | None:
    """Normalize a whole batch columnar-style, or ``None`` to fall back.

    The bridge the indexes use: when the configured normalizer has a
    vectorized counterpart, the batch is concatenated once and every
    normalization stage runs as numpy sweeps, producing the arrays the
    batch fingerprinter consumes directly.
    """
    vectorized = vectorize_normalizer(normalizer)
    if vectorized is None:
        return None
    return vectorized(PointBatch.from_trajectories(trajectories))
