"""Trajectory normalization (paper Section V)."""

from .batch import (
    BatchDecimator,
    BatchGridNormalizer,
    BatchIdentity,
    BatchMedianSmoother,
    BatchMovingAverageSmoother,
    BatchNormalizer,
    BatchPipeline,
    BatchUniformResampler,
    PointBatch,
    normalize_point_batch,
    vectorize_normalizer,
)
from .grid import GridNormalizer
from .pipeline import (
    ComposedNormalizer,
    MapMatchNormalizer,
    Normalizer,
    compose,
    identity,
)
from .resample import Decimator, UniformResampler
from .smooth import MedianSmoother, MovingAverageSmoother

__all__ = [
    "BatchDecimator",
    "BatchGridNormalizer",
    "BatchIdentity",
    "BatchMedianSmoother",
    "BatchMovingAverageSmoother",
    "BatchNormalizer",
    "BatchPipeline",
    "BatchUniformResampler",
    "ComposedNormalizer",
    "Decimator",
    "GridNormalizer",
    "MapMatchNormalizer",
    "MedianSmoother",
    "MovingAverageSmoother",
    "Normalizer",
    "PointBatch",
    "UniformResampler",
    "compose",
    "identity",
    "normalize_point_batch",
    "vectorize_normalizer",
]


def standard_normalizer(depth: int = 36, smoothing_window: int = 9) -> Normalizer:
    """The evaluation's default normalization: smooth, then grid.

    A centered moving average suppresses per-point GPS noise before the
    geohash grid normalization of Section V-A; ``depth=36`` is the paper's
    best configuration (Figure 8).
    """
    return compose(MovingAverageSmoother(smoothing_window), GridNormalizer(depth))


__all__.append("standard_normalizer")
