"""Trajectory normalization (paper Section V)."""

from .grid import GridNormalizer
from .pipeline import MapMatchNormalizer, Normalizer, compose, identity
from .resample import Decimator, UniformResampler
from .smooth import MedianSmoother, MovingAverageSmoother

__all__ = [
    "Decimator",
    "GridNormalizer",
    "MapMatchNormalizer",
    "MedianSmoother",
    "MovingAverageSmoother",
    "Normalizer",
    "UniformResampler",
    "compose",
    "identity",
]


def standard_normalizer(depth: int = 36, smoothing_window: int = 9) -> Normalizer:
    """The evaluation's default normalization: smooth, then grid.

    A centered moving average suppresses per-point GPS noise before the
    geohash grid normalization of Section V-A; ``depth=36`` is the paper's
    best configuration (Figure 8).
    """
    return compose(MovingAverageSmoother(smoothing_window), GridNormalizer(depth))


__all__.append("standard_normalizer")
