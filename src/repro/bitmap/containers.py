"""Containers of the roaring bitmap (Lemire et al., cited as [19] in the paper).

A roaring bitmap partitions the 32-bit universe into 2^16 chunks keyed by
the high 16 bits of each value.  Every chunk holding at least one value is
materialized as one of three containers storing the low 16 bits:

* :class:`ArrayContainer` — a sorted array, used while the chunk holds at
  most ``ARRAY_MAX_SIZE`` (4096) values;
* :class:`BitmapContainer` — a fixed 2^16-bit bitset (1024 x 64-bit words),
  used for denser chunks;
* :class:`RunContainer` — sorted ``(start, length)`` runs, chosen by
  ``run_optimize`` when it is the most compact encoding.

Binary operations dispatch on the pair of container types and always
return a container in its canonical form: an array when the cardinality is
at most 4096, a bitmap otherwise.  Run containers are storage-only: they
convert to the equivalent array/bitmap on entry to a binary operation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Union

import numpy as np

#: Maximum cardinality of an array container.
ARRAY_MAX_SIZE = 4096

#: Number of 64-bit words in a bitmap container.
BITMAP_WORDS = 1024

#: Size of the low-bits universe covered by one container.
CONTAINER_SIZE = 1 << 16

Container = Union["ArrayContainer", "BitmapContainer", "RunContainer"]


def _as_uint16_array(values: np.ndarray) -> np.ndarray:
    """View/convert an integer array as uint16 without copying when possible."""
    if values.dtype == np.uint16:
        return values
    return values.astype(np.uint16)


class ArrayContainer:
    """Sorted array of distinct low-16-bit values."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray | None = None) -> None:
        if values is None:
            values = np.empty(0, dtype=np.uint16)
        self.values = _as_uint16_array(values)

    @classmethod
    def from_sorted(cls, values: np.ndarray) -> "ArrayContainer":
        """Wrap an already-sorted, duplicate-free array."""
        return cls(values)

    @classmethod
    def from_unsorted(cls, values: np.ndarray) -> "ArrayContainer":
        """Build from arbitrary values (sorts and deduplicates)."""
        return cls(np.unique(_as_uint16_array(np.asarray(values))))

    @property
    def cardinality(self) -> int:
        """Number of stored values."""
        return int(self.values.size)

    def contains(self, low: int) -> bool:
        """Membership test for a low-bits value."""
        i = int(np.searchsorted(self.values, low))
        return i < self.values.size and int(self.values[i]) == low

    def add(self, low: int) -> "Container":
        """Return a container with ``low`` inserted (self if already present)."""
        i = int(np.searchsorted(self.values, low))
        if i < self.values.size and int(self.values[i]) == low:
            return self
        values = np.insert(self.values, i, low)
        if values.size > ARRAY_MAX_SIZE:
            return BitmapContainer.from_array_values(values)
        return ArrayContainer(values)

    def discard(self, low: int) -> "ArrayContainer":
        """Return a container with ``low`` removed (self if absent)."""
        i = int(np.searchsorted(self.values, low))
        if i < self.values.size and int(self.values[i]) == low:
            return ArrayContainer(np.delete(self.values, i))
        return self

    def __iter__(self) -> Iterator[int]:
        return iter(self.values.tolist())

    def min(self) -> int:
        """Smallest stored value."""
        return int(self.values[0])

    def max(self) -> int:
        """Largest stored value."""
        return int(self.values[-1])

    def rank(self, low: int) -> int:
        """Number of stored values <= ``low``."""
        return int(np.searchsorted(self.values, low, side="right"))

    def select(self, i: int) -> int:
        """The i-th smallest stored value (0-based)."""
        return int(self.values[i])

    def to_bitmap(self) -> "BitmapContainer":
        """Convert to a bitmap container."""
        return BitmapContainer.from_array_values(self.values)

    def copy(self) -> "ArrayContainer":
        """Deep copy."""
        return ArrayContainer(self.values.copy())

    def byte_size(self) -> int:
        """Approximate in-memory payload size in bytes."""
        return 2 * self.cardinality


class BitmapContainer:
    """Fixed-size 2^16-bit bitset with cached cardinality."""

    __slots__ = ("words", "_cardinality")

    def __init__(self, words: np.ndarray, cardinality: int | None = None) -> None:
        if words.shape != (BITMAP_WORDS,) or words.dtype != np.uint64:
            raise ValueError("bitmap container requires 1024 uint64 words")
        self.words = words
        if cardinality is None:
            cardinality = int(np.bitwise_count(words).sum())
        self._cardinality = cardinality

    @classmethod
    def empty(cls) -> "BitmapContainer":
        """A bitmap with no bits set."""
        return cls(np.zeros(BITMAP_WORDS, dtype=np.uint64), 0)

    @classmethod
    def from_array_values(cls, values: np.ndarray) -> "BitmapContainer":
        """Build from an array of distinct low-bits values."""
        words = np.zeros(BITMAP_WORDS, dtype=np.uint64)
        v = values.astype(np.uint32)
        np.bitwise_or.at(words, v >> 6, np.uint64(1) << (v & 63).astype(np.uint64))
        return cls(words, int(len(values)))

    @property
    def cardinality(self) -> int:
        """Number of set bits."""
        return self._cardinality

    def contains(self, low: int) -> bool:
        """Membership test for a low-bits value."""
        return bool((int(self.words[low >> 6]) >> (low & 63)) & 1)

    def contains_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership test; returns a boolean array."""
        v = values.astype(np.uint32)
        return ((self.words[v >> 6] >> (v & 63).astype(np.uint64)) & np.uint64(1)).astype(
            bool
        )

    def add(self, low: int) -> "BitmapContainer":
        """Return a container with ``low`` inserted."""
        if self.contains(low):
            return self
        words = self.words.copy()
        words[low >> 6] |= np.uint64(1) << np.uint64(low & 63)
        return BitmapContainer(words, self._cardinality + 1)

    def discard(self, low: int) -> "Container":
        """Return a container with ``low`` removed (demotes to array if sparse)."""
        if not self.contains(low):
            return self
        words = self.words.copy()
        words[low >> 6] &= ~(np.uint64(1) << np.uint64(low & 63))
        result = BitmapContainer(words, self._cardinality - 1)
        if result.cardinality <= ARRAY_MAX_SIZE:
            return result.to_array()
        return result

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_numpy().tolist())

    def to_numpy(self) -> np.ndarray:
        """All set positions as a sorted uint16 array."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits).astype(np.uint16)

    def min(self) -> int:
        """Smallest set bit."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            raise ValueError("min of empty container")
        w = int(nz[0])
        word = int(self.words[w])
        return (w << 6) + ((word & -word).bit_length() - 1)

    def max(self) -> int:
        """Largest set bit."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            raise ValueError("max of empty container")
        w = int(nz[-1])
        word = int(self.words[w])
        return (w << 6) + (word.bit_length() - 1)

    def rank(self, low: int) -> int:
        """Number of set bits <= ``low``."""
        w = low >> 6
        full = int(np.bitwise_count(self.words[:w]).sum()) if w else 0
        mask = (1 << ((low & 63) + 1)) - 1
        return full + int(np.bitwise_count(np.uint64(int(self.words[w]) & mask)))

    def select(self, i: int) -> int:
        """The i-th smallest set bit (0-based)."""
        if not 0 <= i < self._cardinality:
            raise IndexError(f"select({i}) on container of size {self._cardinality}")
        counts = np.bitwise_count(self.words).astype(np.int64)
        cumulative = np.cumsum(counts)
        w = int(np.searchsorted(cumulative, i + 1))
        before = int(cumulative[w - 1]) if w else 0
        word = int(self.words[w])
        remaining = i - before
        for bit in range(64):
            if (word >> bit) & 1:
                if remaining == 0:
                    return (w << 6) + bit
                remaining -= 1
        raise AssertionError("cardinality bookkeeping violated")

    def to_array(self) -> ArrayContainer:
        """Convert to an array container."""
        return ArrayContainer(self.to_numpy())

    def copy(self) -> "BitmapContainer":
        """Deep copy."""
        return BitmapContainer(self.words.copy(), self._cardinality)

    def byte_size(self) -> int:
        """Approximate in-memory payload size in bytes."""
        return BITMAP_WORDS * 8


class RunContainer:
    """Sorted, non-overlapping, non-adjacent ``(start, length)`` runs.

    ``(start, length)`` encodes the values ``start .. start + length - 1``.
    Run containers are produced by ``run_optimize`` for chunks dominated by
    long consecutive ranges; they convert to array/bitmap form when they
    participate in binary operations.
    """

    __slots__ = ("starts", "lengths")

    def __init__(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        self.starts = starts.astype(np.uint16)
        self.lengths = lengths.astype(np.uint32)

    @classmethod
    def from_sorted_values(cls, values: np.ndarray) -> "RunContainer":
        """Build runs from a sorted array of distinct values."""
        if len(values) == 0:
            return cls(np.empty(0, dtype=np.uint16), np.empty(0, dtype=np.uint32))
        v = values.astype(np.int64)
        breaks = np.flatnonzero(np.diff(v) != 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [len(v) - 1]))
        return cls(v[starts].astype(np.uint16), (ends - starts + 1).astype(np.uint32))

    @property
    def num_runs(self) -> int:
        """Number of runs."""
        return int(self.starts.size)

    @property
    def cardinality(self) -> int:
        """Total number of encoded values."""
        return int(self.lengths.sum())

    def contains(self, low: int) -> bool:
        """Membership test for a low-bits value."""
        i = bisect_right(self.starts.tolist(), low) - 1
        if i < 0:
            return False
        return low < int(self.starts[i]) + int(self.lengths[i])

    def __iter__(self) -> Iterator[int]:
        for start, length in zip(self.starts.tolist(), self.lengths.tolist()):
            yield from range(start, start + length)

    def min(self) -> int:
        """Smallest encoded value."""
        return int(self.starts[0])

    def max(self) -> int:
        """Largest encoded value."""
        return int(self.starts[-1]) + int(self.lengths[-1]) - 1

    def to_numpy(self) -> np.ndarray:
        """All encoded values as a sorted uint16 array."""
        if self.num_runs == 0:
            return np.empty(0, dtype=np.uint16)
        pieces = [
            np.arange(start, start + length, dtype=np.uint32)
            for start, length in zip(self.starts.tolist(), self.lengths.tolist())
        ]
        return np.concatenate(pieces).astype(np.uint16)

    def to_array_or_bitmap(self) -> Container:
        """Canonical array/bitmap form, selected by cardinality."""
        values = self.to_numpy()
        if values.size <= ARRAY_MAX_SIZE:
            return ArrayContainer(values)
        return BitmapContainer.from_array_values(values)

    def add(self, low: int) -> Container:
        """Return a container with ``low`` inserted (leaves run form)."""
        if self.contains(low):
            return self
        return canonicalize(self.to_array_or_bitmap().add(low))

    def discard(self, low: int) -> Container:
        """Return a container with ``low`` removed (leaves run form)."""
        if not self.contains(low):
            return self
        return canonicalize(self.to_array_or_bitmap().discard(low))

    def copy(self) -> "RunContainer":
        """Deep copy."""
        return RunContainer(self.starts.copy(), self.lengths.copy())

    def byte_size(self) -> int:
        """Approximate in-memory payload size in bytes."""
        return 4 * self.num_runs


def canonicalize(container: Container) -> Container:
    """Normalize to array (<= 4096 values) or bitmap (> 4096 values) form."""
    if isinstance(container, RunContainer):
        container = container.to_array_or_bitmap()
    if isinstance(container, ArrayContainer) and container.cardinality > ARRAY_MAX_SIZE:
        return container.to_bitmap()
    if (
        isinstance(container, BitmapContainer)
        and container.cardinality <= ARRAY_MAX_SIZE
    ):
        return container.to_array()
    return container


def run_optimize(container: Container) -> Container:
    """Pick the most compact of run/array/bitmap encodings for a container."""
    if isinstance(container, RunContainer):
        values = container.to_numpy()
        run = container
    elif isinstance(container, ArrayContainer):
        values = container.values
        run = RunContainer.from_sorted_values(values)
    else:
        values = container.to_numpy()
        run = RunContainer.from_sorted_values(values)
    run_bytes = 4 * run.num_runs
    array_bytes = 2 * len(values)
    bitmap_bytes = BITMAP_WORDS * 8
    best = min(run_bytes, array_bytes, bitmap_bytes)
    if best == run_bytes:
        return run
    if best == array_bytes:
        return ArrayContainer(values)
    return BitmapContainer.from_array_values(values)


def _materialize(container: Container) -> Container:
    """Resolve run containers to array/bitmap before a binary operation."""
    if isinstance(container, RunContainer):
        return container.to_array_or_bitmap()
    return container


def container_and(a: Container, b: Container) -> Container:
    """Intersection of two containers (canonical result)."""
    a = _materialize(a)
    b = _materialize(b)
    if isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer):
        return ArrayContainer(np.intersect1d(a.values, b.values))
    if isinstance(a, ArrayContainer) and isinstance(b, BitmapContainer):
        return ArrayContainer(a.values[b.contains_many(a.values)])
    if isinstance(a, BitmapContainer) and isinstance(b, ArrayContainer):
        return ArrayContainer(b.values[a.contains_many(b.values)])
    assert isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer)
    return canonicalize(BitmapContainer(a.words & b.words))


def container_or(a: Container, b: Container) -> Container:
    """Union of two containers (canonical result)."""
    a = _materialize(a)
    b = _materialize(b)
    if isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer):
        return canonicalize(ArrayContainer(np.union1d(a.values, b.values)))
    if isinstance(a, ArrayContainer) and isinstance(b, BitmapContainer):
        a, b = b, a
    if isinstance(a, BitmapContainer) and isinstance(b, ArrayContainer):
        words = a.words.copy()
        v = b.values.astype(np.uint32)
        np.bitwise_or.at(words, v >> 6, np.uint64(1) << (v & 63).astype(np.uint64))
        return BitmapContainer(words)
    assert isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer)
    return BitmapContainer(a.words | b.words)


def container_andnot(a: Container, b: Container) -> Container:
    """Difference ``a - b`` (canonical result)."""
    a = _materialize(a)
    b = _materialize(b)
    if isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer):
        return ArrayContainer(np.setdiff1d(a.values, b.values, assume_unique=True))
    if isinstance(a, ArrayContainer) and isinstance(b, BitmapContainer):
        return ArrayContainer(a.values[~b.contains_many(a.values)])
    if isinstance(a, BitmapContainer) and isinstance(b, ArrayContainer):
        words = a.words.copy()
        v = b.values.astype(np.uint32)
        np.bitwise_and.at(
            words, v >> 6, ~(np.uint64(1) << (v & 63).astype(np.uint64))
        )
        return canonicalize(BitmapContainer(words))
    assert isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer)
    return canonicalize(BitmapContainer(a.words & ~b.words))


def container_xor(a: Container, b: Container) -> Container:
    """Symmetric difference (canonical result)."""
    a = _materialize(a)
    b = _materialize(b)
    if isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer):
        return canonicalize(ArrayContainer(np.setxor1d(a.values, b.values)))
    if isinstance(a, ArrayContainer) and isinstance(b, BitmapContainer):
        a, b = b, a
    if isinstance(a, BitmapContainer) and isinstance(b, ArrayContainer):
        words = a.words.copy()
        v = b.values.astype(np.uint32)
        np.bitwise_xor.at(words, v >> 6, np.uint64(1) << (v & 63).astype(np.uint64))
        return canonicalize(BitmapContainer(words))
    assert isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer)
    return canonicalize(BitmapContainer(a.words ^ b.words))


def container_and_cardinality(a: Container, b: Container) -> int:
    """Cardinality of the intersection without materializing it fully."""
    a = _materialize(a)
    b = _materialize(b)
    if isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer):
        return int(np.bitwise_count(a.words & b.words).sum())
    if isinstance(a, ArrayContainer) and isinstance(b, BitmapContainer):
        return int(b.contains_many(a.values).sum())
    if isinstance(a, BitmapContainer) and isinstance(b, ArrayContainer):
        return int(a.contains_many(b.values).sum())
    assert isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer)
    return int(np.intersect1d(a.values, b.values).size)


def container_values(container: Container) -> np.ndarray:
    """All values of a container as a sorted uint16 numpy array."""
    if isinstance(container, ArrayContainer):
        return container.values
    return container.to_numpy()
