"""Roaring bitmaps over the 32-bit (and, via a wrapper, 64-bit) universe.

The paper stores each trajectory's fingerprint set as a roaring bitmap and
ranks query results by comparing bitmaps with bitwise operations (Section
IV-A).  This is a from-scratch reproduction of the data structure: values
are split into a 16-bit *key* (high bits) selecting a container and a
16-bit *low* part stored inside the container (see
:mod:`repro.bitmap.containers`).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from .containers import (
    ARRAY_MAX_SIZE,
    ArrayContainer,
    BitmapContainer,
    Container,
    RunContainer,
    canonicalize,
    container_and,
    container_and_cardinality,
    container_andnot,
    container_or,
    container_values,
    container_xor,
    run_optimize,
)

_MAX_VALUE_32 = (1 << 32) - 1


def _check_value(value: int) -> None:
    if not 0 <= value <= _MAX_VALUE_32:
        raise ValueError(f"value {value} outside the 32-bit universe")


class RoaringBitmap:
    """A compressed set of 32-bit unsigned integers.

    Supports the full set algebra (``| & - ^``), cardinality queries,
    Jaccard similarity, rank/select, and a simple binary serialization.
    Instances behave like immutable values for binary operators but offer
    in-place mutation through :meth:`add` and :meth:`discard`.
    """

    __slots__ = ("_containers",)

    def __init__(self) -> None:
        self._containers: dict[int, Container] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_iterable(cls, values: Iterable[int]) -> "RoaringBitmap":
        """Build a bitmap from arbitrary integers (vectorized)."""
        array = np.fromiter((int(v) for v in values), dtype=np.int64, count=-1)
        return cls.from_numpy(array)

    @classmethod
    def from_numpy(cls, values: np.ndarray) -> "RoaringBitmap":
        """Build a bitmap from a numpy integer array."""
        bitmap = cls()
        if values.size == 0:
            return bitmap
        v = np.asarray(values)
        if v.min() < 0 or v.max() > _MAX_VALUE_32:
            raise ValueError("values outside the 32-bit universe")
        v = np.unique(v.astype(np.uint32))
        keys = v >> 16
        lows = (v & 0xFFFF).astype(np.uint16)
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        for chunk_lows, key in zip(
            np.split(lows, boundaries), np.split(keys, boundaries)
        ):
            container: Container = ArrayContainer(chunk_lows)
            bitmap._containers[int(key[0])] = canonicalize(container)
        return bitmap

    def copy(self) -> "RoaringBitmap":
        """Deep copy."""
        out = RoaringBitmap()
        out._containers = {k: c.copy() for k, c in self._containers.items()}
        return out

    # ------------------------------------------------------------------
    # Point queries and mutation
    # ------------------------------------------------------------------

    def add(self, value: int) -> None:
        """Insert a value."""
        _check_value(value)
        key, low = value >> 16, value & 0xFFFF
        container = self._containers.get(key)
        if container is None:
            self._containers[key] = ArrayContainer(np.array([low], dtype=np.uint16))
        else:
            self._containers[key] = container.add(low)

    def discard(self, value: int) -> None:
        """Remove a value if present."""
        _check_value(value)
        key, low = value >> 16, value & 0xFFFF
        container = self._containers.get(key)
        if container is None:
            return
        updated = container.discard(low)
        if updated.cardinality == 0:
            del self._containers[key]
        else:
            self._containers[key] = updated

    def remove(self, value: int) -> None:
        """Remove a value; raise ``KeyError`` if absent."""
        if value not in self:
            raise KeyError(value)
        self.discard(value)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int) or not 0 <= value <= _MAX_VALUE_32:
            return False
        container = self._containers.get(value >> 16)
        return container is not None and container.contains(value & 0xFFFF)

    # ------------------------------------------------------------------
    # Size and iteration
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(c.cardinality for c in self._containers.values())

    def __bool__(self) -> bool:
        return bool(self._containers)

    def __iter__(self) -> Iterator[int]:
        for key in sorted(self._containers):
            base = key << 16
            for low in self._containers[key]:
                yield base | int(low)

    def to_numpy(self) -> np.ndarray:
        """All values as a sorted uint32 array."""
        if not self._containers:
            return np.empty(0, dtype=np.uint32)
        pieces = []
        for key in sorted(self._containers):
            values = container_values(self._containers[key]).astype(np.uint32)
            pieces.append(values + np.uint32(key << 16))
        return np.concatenate(pieces)

    def min(self) -> int:
        """Smallest value."""
        if not self._containers:
            raise ValueError("min of empty bitmap")
        key = min(self._containers)
        return (key << 16) | self._containers[key].min()

    def max(self) -> int:
        """Largest value."""
        if not self._containers:
            raise ValueError("max of empty bitmap")
        key = max(self._containers)
        return (key << 16) | self._containers[key].max()

    def rank(self, value: int) -> int:
        """Number of stored values <= ``value``."""
        _check_value(value)
        key, low = value >> 16, value & 0xFFFF
        total = 0
        for k in sorted(self._containers):
            if k < key:
                total += self._containers[k].cardinality
            elif k == key:
                container = self._containers[k]
                if isinstance(container, RunContainer):
                    container = container.to_array_or_bitmap()
                total += container.rank(low)
            else:
                break
        return total

    def select(self, i: int) -> int:
        """The i-th smallest value (0-based)."""
        if i < 0:
            raise IndexError(i)
        remaining = i
        for key in sorted(self._containers):
            container = self._containers[key]
            if remaining < container.cardinality:
                if isinstance(container, RunContainer):
                    container = container.to_array_or_bitmap()
                return (key << 16) | container.select(remaining)
            remaining -= container.cardinality
        raise IndexError(i)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def _binary(
        self, other: "RoaringBitmap", op: str
    ) -> "RoaringBitmap":
        out = RoaringBitmap()
        keys_self = set(self._containers)
        keys_other = set(other._containers)
        if op == "and":
            for key in keys_self & keys_other:
                c = container_and(self._containers[key], other._containers[key])
                if c.cardinality:
                    out._containers[key] = c
        elif op == "or":
            for key in keys_self | keys_other:
                a = self._containers.get(key)
                b = other._containers.get(key)
                if a is not None and b is not None:
                    out._containers[key] = container_or(a, b)
                elif a is not None:
                    out._containers[key] = a.copy()
                else:
                    assert b is not None
                    out._containers[key] = b.copy()
        elif op == "andnot":
            for key in keys_self:
                a = self._containers[key]
                b = other._containers.get(key)
                if b is None:
                    out._containers[key] = a.copy()
                else:
                    c = container_andnot(a, b)
                    if c.cardinality:
                        out._containers[key] = c
        elif op == "xor":
            for key in keys_self | keys_other:
                a = self._containers.get(key)
                b = other._containers.get(key)
                if a is not None and b is not None:
                    c = container_xor(a, b)
                    if c.cardinality:
                        out._containers[key] = c
                elif a is not None:
                    out._containers[key] = a.copy()
                else:
                    assert b is not None
                    out._containers[key] = b.copy()
        else:  # pragma: no cover - internal misuse
            raise ValueError(op)
        return out

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "and")

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "or")

    def __sub__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "andnot")

    def __xor__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "xor")

    def intersection_cardinality(self, other: "RoaringBitmap") -> int:
        """``|self & other|`` without materializing the intersection."""
        total = 0
        small, large = (
            (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        )
        for key, a in small._containers.items():
            b = large._containers.get(key)
            if b is not None:
                total += container_and_cardinality(a, b)
        return total

    def union_cardinality(self, other: "RoaringBitmap") -> int:
        """``|self | other|`` via inclusion-exclusion."""
        return len(self) + len(other) - self.intersection_cardinality(other)

    def jaccard(self, other: "RoaringBitmap") -> float:
        """Jaccard coefficient ``|A & B| / |A | B|`` (0.0 for two empty sets).

        The empty/empty case has no natural value (``0/0``); retrieval
        semantics pick 0.0 — distance 1.0 — so an empty-fingerprint
        query (or a tombstoned document's empty bitmap) never counts as
        a perfect match, matching the vectorized scoring engine, which
        never ranks candidates without at least one shared term.  Never
        raises ``ZeroDivisionError``.
        """
        inter = self.intersection_cardinality(other)
        union = len(self) + len(other) - inter
        if union == 0:
            return 0.0
        return inter / union

    def jaccard_distance(self, other: "RoaringBitmap") -> float:
        """Jaccard distance ``1 - jaccard`` (paper Equation 1).

        1.0 — maximally distant — for two empty bitmaps (see
        :meth:`jaccard`).
        """
        return 1.0 - self.jaccard(other)

    def isdisjoint(self, other: "RoaringBitmap") -> bool:
        """Whether the two bitmaps share no value."""
        return self.intersection_cardinality(other) == 0

    def issubset(self, other: "RoaringBitmap") -> bool:
        """Whether every value of self is in other."""
        return self.intersection_cardinality(other) == len(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        if set(self._containers) != set(other._containers):
            return False
        for key, a in self._containers.items():
            b = other._containers[key]
            if a.cardinality != b.cardinality:
                return False
            if not np.array_equal(container_values(a), container_values(b)):
                return False
        return True

    def __hash__(self) -> int:  # bitmaps are mutable; hash by identity
        return id(self)

    # ------------------------------------------------------------------
    # Maintenance and storage
    # ------------------------------------------------------------------

    def run_optimize(self) -> None:
        """Re-encode containers with runs where that is the smallest form."""
        for key, container in list(self._containers.items()):
            self._containers[key] = run_optimize(container)

    def byte_size(self) -> int:
        """Approximate in-memory payload size in bytes."""
        return sum(c.byte_size() for c in self._containers.values()) + 4 * len(
            self._containers
        )

    def container_stats(self) -> dict[str, int]:
        """Number of containers per kind (for the bitmap ablation bench)."""
        stats = {"array": 0, "bitmap": 0, "run": 0}
        for container in self._containers.values():
            if isinstance(container, ArrayContainer):
                stats["array"] += 1
            elif isinstance(container, BitmapContainer):
                stats["bitmap"] += 1
            else:
                stats["run"] += 1
        return stats

    def serialize(self) -> bytes:
        """Serialize to a compact binary blob (library-private format)."""
        parts = [struct.pack("<I", len(self._containers))]
        for key in sorted(self._containers):
            container = self._containers[key]
            values = container_values(container)
            parts.append(struct.pack("<HI", key, len(values)))
            parts.append(values.astype("<u2").tobytes())
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "RoaringBitmap":
        """Inverse of :meth:`serialize`."""
        bitmap = cls()
        (count,) = struct.unpack_from("<I", blob, 0)
        offset = 4
        for _ in range(count):
            key, size = struct.unpack_from("<HI", blob, offset)
            offset += 6
            values = np.frombuffer(blob, dtype="<u2", count=size, offset=offset)
            offset += 2 * size
            bitmap._containers[key] = canonicalize(
                ArrayContainer(values.astype(np.uint16))
            )
        return bitmap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self)
        if n <= 8:
            return f"RoaringBitmap({list(self)})"
        return f"RoaringBitmap(<{n} values>)"


class Roaring64Map:
    """A set of 64-bit unsigned integers backed by 32-bit roaring bitmaps.

    Keys on the high 32 bits.  Only the operations the library needs for
    wide geodabs are provided (add/contains/len/iter, union, intersection,
    Jaccard); narrow (32-bit) fingerprints should use
    :class:`RoaringBitmap` directly.
    """

    __slots__ = ("_maps",)

    _MAX_VALUE_64 = (1 << 64) - 1

    def __init__(self) -> None:
        self._maps: dict[int, RoaringBitmap] = {}

    @classmethod
    def from_iterable(cls, values: Iterable[int]) -> "Roaring64Map":
        """Build from arbitrary 64-bit integers."""
        out = cls()
        for v in values:
            out.add(v)
        return out

    @classmethod
    def from_numpy(cls, values: np.ndarray) -> "Roaring64Map":
        """Build from a numpy integer array (vectorized).

        The batch fingerprinting pipeline hands whole selection arrays
        over; grouping by high word keeps the per-value Python loop of
        :meth:`from_iterable` off the bulk-ingest path.
        """
        out = cls()
        if values.size == 0:
            return out
        v = np.asarray(values)
        if v.dtype != np.uint64 and v.min() < 0:
            raise ValueError("values outside the 64-bit universe")
        # Sort + dedupe once, then split at high-word changes (the same
        # idiom as RoaringBitmap.from_numpy) — one pass regardless of
        # how many distinct high words the values span.
        v = np.unique(v.astype(np.uint64, copy=False))
        highs = v >> np.uint64(32)
        lows = (v & np.uint64(0xFFFFFFFF)).astype(np.int64)
        boundaries = np.flatnonzero(np.diff(highs)) + 1
        for chunk_lows, chunk_highs in zip(
            np.split(lows, boundaries), np.split(highs, boundaries)
        ):
            out._maps[int(chunk_highs[0])] = RoaringBitmap.from_numpy(chunk_lows)
        return out

    def add(self, value: int) -> None:
        """Insert a value."""
        if not 0 <= value <= self._MAX_VALUE_64:
            raise ValueError(f"value {value} outside the 64-bit universe")
        high, low = value >> 32, value & 0xFFFFFFFF
        self._maps.setdefault(high, RoaringBitmap()).add(low)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int) or not 0 <= value <= self._MAX_VALUE_64:
            return False
        bitmap = self._maps.get(value >> 32)
        return bitmap is not None and (value & 0xFFFFFFFF) in bitmap

    def __len__(self) -> int:
        return sum(len(m) for m in self._maps.values())

    def __iter__(self) -> Iterator[int]:
        for high in sorted(self._maps):
            base = high << 32
            for low in self._maps[high]:
                yield base | low

    def __or__(self, other: "Roaring64Map") -> "Roaring64Map":
        out = Roaring64Map()
        for high in set(self._maps) | set(other._maps):
            a = self._maps.get(high)
            b = other._maps.get(high)
            if a is not None and b is not None:
                out._maps[high] = a | b
            elif a is not None:
                out._maps[high] = a.copy()
            else:
                assert b is not None
                out._maps[high] = b.copy()
        return out

    def __and__(self, other: "Roaring64Map") -> "Roaring64Map":
        out = Roaring64Map()
        for high in set(self._maps) & set(other._maps):
            c = self._maps[high] & other._maps[high]
            if c:
                out._maps[high] = c
        return out

    def intersection_cardinality(self, other: "Roaring64Map") -> int:
        """``|self & other|`` without materializing the intersection."""
        total = 0
        for high, a in self._maps.items():
            b = other._maps.get(high)
            if b is not None:
                total += a.intersection_cardinality(b)
        return total

    def jaccard(self, other: "Roaring64Map") -> float:
        """Jaccard coefficient (0.0 for two empty maps).

        Same defined edge case as :meth:`RoaringBitmap.jaccard`: the
        empty/empty coefficient is 0.0 — distance 1.0, never a
        ``ZeroDivisionError`` — so empty fingerprint sets are maximally
        distant rather than perfect matches.
        """
        inter = self.intersection_cardinality(other)
        union = len(self) + len(other) - inter
        if union == 0:
            return 0.0
        return inter / union

    def jaccard_distance(self, other: "Roaring64Map") -> float:
        """Jaccard distance ``1 - jaccard`` (1.0 for two empty maps)."""
        return 1.0 - self.jaccard(other)

    def serialize(self) -> bytes:
        """Serialize to a binary blob (one 32-bit map per high word)."""
        parts = [struct.pack("<I", len(self._maps))]
        for high in sorted(self._maps):
            blob = self._maps[high].serialize()
            parts.append(struct.pack("<II", high, len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "Roaring64Map":
        """Inverse of :meth:`serialize`."""
        out = cls()
        (count,) = struct.unpack_from("<I", blob, 0)
        offset = 4
        for _ in range(count):
            high, size = struct.unpack_from("<II", blob, offset)
            offset += 8
            out._maps[high] = RoaringBitmap.deserialize(blob[offset:offset + size])
            offset += size
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Roaring64Map):
            return NotImplemented
        keys = {k for k, m in self._maps.items() if len(m)}
        other_keys = {k for k, m in other._maps.items() if len(m)}
        if keys != other_keys:
            return False
        return all(self._maps[k] == other._maps[k] for k in keys)

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Roaring64Map(<{len(self)} values>)"
