"""Roaring bitmap substrate (paper Section IV-A, reference [19])."""

from .containers import (
    ARRAY_MAX_SIZE,
    ArrayContainer,
    BitmapContainer,
    RunContainer,
    canonicalize,
    run_optimize,
)
from .roaring import Roaring64Map, RoaringBitmap

__all__ = [
    "ARRAY_MAX_SIZE",
    "ArrayContainer",
    "BitmapContainer",
    "Roaring64Map",
    "RoaringBitmap",
    "RunContainer",
    "canonicalize",
    "run_optimize",
]
