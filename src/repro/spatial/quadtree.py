"""Region quadtree over trajectory bounding boxes (Finkel & Bentley 1974).

One of the classic space-partitioning structures the paper's introduction
argues against for dense trajectory data: bounding-interval queries select
every trajectory whose box intersects the query region, which for long or
overlapping trajectories yields many irrelevant candidates.  The spatial
ablation benchmark quantifies that effect against the inverted indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..geo.bbox import WORLD, BBox, bbox_of
from ..geo.point import Trajectory

__all__ = ["QuadTree"]


@dataclass(slots=True)
class _Entry:
    key: Hashable
    box: BBox


class _Node:
    __slots__ = ("box", "entries", "children", "depth")

    def __init__(self, box: BBox, depth: int) -> None:
        self.box = box
        self.entries: list[_Entry] = []
        self.children: list["_Node"] | None = None
        self.depth = depth

    def quadrants(self) -> list[BBox]:
        mid_lat = (self.box.south + self.box.north) / 2.0
        mid_lon = (self.box.west + self.box.east) / 2.0
        return [
            BBox(self.box.south, self.box.west, mid_lat, mid_lon),
            BBox(self.box.south, mid_lon, mid_lat, self.box.east),
            BBox(mid_lat, self.box.west, self.box.north, mid_lon),
            BBox(mid_lat, mid_lon, self.box.north, self.box.east),
        ]


class QuadTree:
    """A quadtree of ``(key, bbox)`` entries with region queries.

    Entries live in the deepest node whose quadrant fully contains their
    box; a node splits once it holds more than ``node_capacity`` entries
    (up to ``max_depth``).  This is the textbook variant adequate for the
    candidate-selection role measured by the ablation bench.
    """

    def __init__(
        self,
        bounds: BBox = WORLD,
        node_capacity: int = 16,
        max_depth: int = 24,
    ) -> None:
        if node_capacity < 1:
            raise ValueError("node_capacity must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self._root = _Node(bounds, 0)
        self._capacity = node_capacity
        self._max_depth = max_depth
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Hashable, box: BBox) -> None:
        """Insert an entry; boxes outside the tree bounds raise."""
        if not self._root.box.contains_box(box):
            raise ValueError(f"box {box} outside tree bounds {self._root.box}")
        self._insert(self._root, _Entry(key, box))
        self._size += 1

    def insert_trajectory(self, key: Hashable, points: Trajectory) -> None:
        """Insert a trajectory under its minimum bounding box."""
        self.insert(key, bbox_of(points))

    def _insert(self, node: _Node, entry: _Entry) -> None:
        while True:
            if node.children is not None:
                placed = False
                for child in node.children:
                    if child.box.contains_box(entry.box):
                        node = child
                        placed = True
                        break
                if placed:
                    continue
                node.entries.append(entry)
                return
            node.entries.append(entry)
            if (
                len(node.entries) > self._capacity
                and node.depth < self._max_depth
            ):
                self._split(node)
            return

    def _split(self, node: _Node) -> None:
        node.children = [
            _Node(box, node.depth + 1) for box in node.quadrants()
        ]
        remaining: list[_Entry] = []
        for entry in node.entries:
            placed = False
            for child in node.children:
                if child.box.contains_box(entry.box):
                    child.entries.append(entry)
                    placed = True
                    break
            if not placed:
                remaining.append(entry)
        node.entries = remaining

    def query(self, region: BBox) -> list[Hashable]:
        """Keys of all entries whose box intersects the region."""
        out: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(region):
                continue
            for entry in node.entries:
                if entry.box.intersects(region):
                    out.append(entry.key)
            if node.children is not None:
                stack.extend(node.children)
        return out

    def __iter__(self) -> Iterator[tuple[Hashable, BBox]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                yield entry.key, entry.box
            if node.children is not None:
                stack.extend(node.children)

    def depth(self) -> int:
        """Deepest populated level (diagnostics)."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.entries and node.depth > best:
                best = node.depth
            if node.children is not None:
                stack.extend(node.children)
        return best
