"""Classic spatial-index baselines (quadtree, r-tree)."""

from .quadtree import QuadTree
from .rtree import RTree

__all__ = ["QuadTree", "RTree"]
