"""R-tree with quadratic splits (Guttman 1984).

The second classic spatial-index baseline from the paper's introduction.
Stores ``(key, bbox)`` entries; used by the spatial ablation benchmark to
measure candidate-set inflation on dense trajectory data, and by the map
matcher's road-segment lookups in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..geo.bbox import BBox, bbox_of, bbox_union
from ..geo.point import Trajectory

__all__ = ["RTree"]


@dataclass(slots=True)
class _Leaf:
    key: Hashable
    box: BBox


class _Node:
    __slots__ = ("box", "children", "entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.children: list["_Node"] = []
        self.entries: list[_Leaf] = []
        self.box: BBox | None = None

    def items(self) -> list:
        return self.entries if self.is_leaf else self.children

    def recompute_box(self) -> None:
        items = self.items()
        self.box = bbox_union(item.box for item in items) if items else None


def _enlargement(box: BBox, extra: BBox) -> float:
    """Area growth of ``box`` if it had to absorb ``extra``."""
    return box.union(extra).area_deg2() - box.area_deg2()


class RTree:
    """An R-tree of ``(key, bbox)`` entries with intersection queries."""

    def __init__(self, max_entries: int = 16, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self._min <= self._max // 2:
            raise ValueError("min_entries must be in [1, max_entries / 2]")
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Hashable, box: BBox) -> None:
        """Insert an entry."""
        split = self._insert(self._root, _Leaf(key, box))
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.children = [old_root, split]
            self._root.recompute_box()
        self._size += 1

    def insert_trajectory(self, key: Hashable, points: Trajectory) -> None:
        """Insert a trajectory under its minimum bounding box."""
        self.insert(key, bbox_of(points))

    def _choose_child(self, node: _Node, box: BBox) -> _Node:
        best = None
        best_growth = float("inf")
        best_area = float("inf")
        for child in node.children:
            assert child.box is not None
            growth = _enlargement(child.box, box)
            area = child.box.area_deg2()
            if growth < best_growth or (growth == best_growth and area < best_area):
                best = child
                best_growth = growth
                best_area = area
        assert best is not None
        return best

    def _insert(self, node: _Node, leaf: _Leaf) -> _Node | None:
        if node.is_leaf:
            node.entries.append(leaf)
            node.box = leaf.box if node.box is None else node.box.union(leaf.box)
            if len(node.entries) > self._max:
                return self._split(node)
            return None
        child = self._choose_child(node, leaf.box)
        split = self._insert(child, leaf)
        node.box = leaf.box if node.box is None else node.box.union(leaf.box)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self._max:
                return self._split(node)
        return None

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seeds are the pair wasting the most area."""
        items = node.items()
        best_pair = (0, 1)
        worst_waste = -float("inf")
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                waste = (
                    items[i].box.union(items[j].box).area_deg2()
                    - items[i].box.area_deg2()
                    - items[j].box.area_deg2()
                )
                if waste > worst_waste:
                    worst_waste = waste
                    best_pair = (i, j)
        seed_a = items[best_pair[0]]
        seed_b = items[best_pair[1]]
        rest = [
            item
            for idx, item in enumerate(items)
            if idx not in best_pair
        ]
        group_a = [seed_a]
        group_b = [seed_b]
        box_a = seed_a.box
        box_b = seed_b.box
        for item in rest:
            # Honor the minimum fill requirement first.
            if len(group_a) + (len(rest) - len(group_a) - len(group_b) + 1) <= self._min:
                group_a.append(item)
                box_a = box_a.union(item.box)
                continue
            if len(group_b) + (len(rest) - len(group_a) - len(group_b) + 1) <= self._min:
                group_b.append(item)
                box_b = box_b.union(item.box)
                continue
            growth_a = _enlargement(box_a, item.box)
            growth_b = _enlargement(box_b, item.box)
            if growth_a < growth_b or (
                growth_a == growth_b and box_a.area_deg2() <= box_b.area_deg2()
            ):
                group_a.append(item)
                box_a = box_a.union(item.box)
            else:
                group_b.append(item)
                box_b = box_b.union(item.box)
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_box()
        sibling.recompute_box()
        return sibling

    def query(self, region: BBox) -> list[Hashable]:
        """Keys of all entries whose box intersects the region."""
        out: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not node.box.intersects(region):
                continue
            if node.is_leaf:
                out.extend(
                    entry.key for entry in node.entries if entry.box.intersects(region)
                )
            else:
                stack.extend(node.children)
        return out

    def __iter__(self) -> Iterator[tuple[Hashable, BBox]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.key, entry.box
            else:
                stack.extend(node.children)

    def height(self) -> int:
        """Tree height (diagnostics)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height
