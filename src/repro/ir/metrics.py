"""Information-retrieval effectiveness metrics (paper Sections V-C, VI-D1).

Implements the measures the paper evaluates indexes with:

* precision / recall and full PR curves over ranked result lists
  (Figures 8 and 12);
* ROC curves — sensitivity vs. 1 - specificity — and the area under them
  (Figure 13), which require knowing the corpus size so true negatives
  can be counted;
* interpolated PR curves averaged over query sets, the standard way to
  aggregate per-query curves (Manning et al., reference [21]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

__all__ = [
    "PRPoint",
    "precision_recall_curve",
    "interpolated_precision_at",
    "average_pr_curve",
    "roc_curve",
    "auc",
    "average_precision",
    "precision_at",
    "recall_at",
    "r_precision",
]

#: Standard 11-point recall levels.
ELEVEN_POINTS = tuple(i / 10.0 for i in range(11))


@dataclass(frozen=True, slots=True)
class PRPoint:
    """One precision/recall operating point."""

    recall: float
    precision: float


def _check_ranking(ranked: Sequence[Hashable]) -> None:
    if len(set(ranked)) != len(ranked):
        raise ValueError("ranked list contains duplicates")


def precision_recall_curve(
    ranked: Sequence[Hashable], relevant: set[Hashable] | frozenset[Hashable]
) -> list[PRPoint]:
    """Precision/recall after each rank of a result list.

    Only defined for queries with at least one relevant item.
    """
    _check_ranking(ranked)
    if not relevant:
        raise ValueError("relevant set must not be empty")
    out: list[PRPoint] = []
    hits = 0
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
        out.append(PRPoint(hits / len(relevant), hits / rank))
    return out


def interpolated_precision_at(
    curve: Sequence[PRPoint], recall_level: float
) -> float:
    """Interpolated precision: max precision at recall >= ``recall_level``.

    The standard interpolation for PR curves; 0.0 when the ranking never
    reaches the recall level.
    """
    if not 0.0 <= recall_level <= 1.0:
        raise ValueError("recall_level must be in [0, 1]")
    best = 0.0
    for point in curve:
        if point.recall >= recall_level and point.precision > best:
            best = point.precision
    return best


def average_pr_curve(
    curves: Sequence[Sequence[PRPoint]],
    recall_levels: Sequence[float] = ELEVEN_POINTS,
) -> list[PRPoint]:
    """Macro-averaged interpolated PR curve over multiple queries."""
    if not curves:
        raise ValueError("no curves to average")
    out: list[PRPoint] = []
    for level in recall_levels:
        precisions = [interpolated_precision_at(c, level) for c in curves]
        out.append(PRPoint(level, sum(precisions) / len(precisions)))
    return out


def roc_curve(
    ranked: Sequence[Hashable],
    relevant: set[Hashable] | frozenset[Hashable],
    corpus_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve of a ranking over a corpus of ``corpus_size`` items.

    Items absent from the ranking are treated as never retrieved (they
    sit below every rank).  Returns ``(fpr, tpr)`` arrays starting at
    (0, 0) and ending at (1, 1); sensitivity is recall, specificity is
    ``tn / (fp + tn)`` as in Section VI-D1.
    """
    _check_ranking(ranked)
    if not relevant:
        raise ValueError("relevant set must not be empty")
    positives = len(relevant)
    negatives = corpus_size - positives
    if negatives < 0:
        raise ValueError("corpus_size smaller than the relevant set")
    fpr = [0.0]
    tpr = [0.0]
    tp = fp = 0
    for item in ranked:
        if item in relevant:
            tp += 1
        else:
            fp += 1
        tpr.append(tp / positives)
        fpr.append(fp / negatives if negatives else 0.0)
    # Everything never retrieved: jump to (1, 1).
    if tpr[-1] < 1.0 or fpr[-1] < 1.0:
        tpr.append(1.0)
        fpr.append(1.0)
    return np.asarray(fpr), np.asarray(tpr)


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Area under a curve by trapezoidal rule (x must be non-decreasing)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("x and y must be 1-d arrays of equal length >= 2")
    if np.any(np.diff(x) < 0):
        raise ValueError("x must be non-decreasing")
    return float(np.trapezoid(y, x))


def average_precision(
    ranked: Sequence[Hashable], relevant: set[Hashable] | frozenset[Hashable]
) -> float:
    """Mean of precision at each relevant hit (AP), 0.0 if none retrieved."""
    _check_ranking(ranked)
    if not relevant:
        raise ValueError("relevant set must not be empty")
    hits = 0
    total = 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def precision_at(
    ranked: Sequence[Hashable],
    relevant: set[Hashable] | frozenset[Hashable],
    k: int,
) -> float:
    """Precision of the top-``k`` results."""
    if k < 1:
        raise ValueError("k must be positive")
    top = ranked[:k]
    return sum(1 for item in top if item in relevant) / k


def recall_at(
    ranked: Sequence[Hashable],
    relevant: set[Hashable] | frozenset[Hashable],
    k: int,
) -> float:
    """Recall of the top-``k`` results."""
    if k < 1:
        raise ValueError("k must be positive")
    if not relevant:
        raise ValueError("relevant set must not be empty")
    top = ranked[:k]
    return sum(1 for item in top if item in relevant) / len(relevant)


def r_precision(
    ranked: Sequence[Hashable], relevant: set[Hashable] | frozenset[Hashable]
) -> float:
    """Precision at rank ``|relevant|`` (the break-even point)."""
    if not relevant:
        raise ValueError("relevant set must not be empty")
    return precision_at(ranked, relevant, len(relevant))
