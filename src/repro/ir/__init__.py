"""Information-retrieval evaluation metrics."""

from .metrics import (
    ELEVEN_POINTS,
    PRPoint,
    auc,
    average_pr_curve,
    average_precision,
    interpolated_precision_at,
    precision_at,
    precision_recall_curve,
    r_precision,
    recall_at,
    roc_curve,
)

__all__ = [
    "ELEVEN_POINTS",
    "PRPoint",
    "auc",
    "average_pr_curve",
    "average_precision",
    "interpolated_precision_at",
    "precision_at",
    "precision_recall_curve",
    "r_precision",
    "recall_at",
    "roc_curve",
]
