"""Jaccard coefficient and distance (paper Equation 1).

The Jaccard distance ``d_J(F, G) = 1 - |F & G| / |F | G|`` is a true metric
(it obeys the triangle inequality, Kosub 2016 — reference [17] of the
paper), which is why the paper uses it as the ranking distance ``delta``
over fingerprint sets.  The functions here accept plain Python sets,
frozensets, and :class:`~repro.bitmap.roaring.RoaringBitmap` /
:class:`~repro.bitmap.roaring.Roaring64Map` instances.
"""

from __future__ import annotations

from typing import AbstractSet, Union

from ..bitmap.roaring import Roaring64Map, RoaringBitmap

FingerprintSet = Union[AbstractSet[int], RoaringBitmap, Roaring64Map]

__all__ = ["jaccard", "jaccard_distance", "overlap_coefficient", "containment"]


def _intersection_and_union(a: FingerprintSet, b: FingerprintSet) -> tuple[int, int]:
    if isinstance(a, (RoaringBitmap, Roaring64Map)) and isinstance(
        b, (RoaringBitmap, Roaring64Map)
    ):
        if type(a) is not type(b):
            raise TypeError("cannot mix 32-bit and 64-bit fingerprint sets")
        inter = a.intersection_cardinality(b)  # type: ignore[arg-type]
        return inter, len(a) + len(b) - inter
    if isinstance(a, (RoaringBitmap, Roaring64Map)) or isinstance(
        b, (RoaringBitmap, Roaring64Map)
    ):
        a = set(a)
        b = set(b)
    inter = len(a & b)  # type: ignore[operator]
    return inter, len(a) + len(b) - inter


def jaccard(a: FingerprintSet, b: FingerprintSet) -> float:
    """Jaccard coefficient ``|A & B| / |A | B|``; 0.0 for two empty sets.

    The empty/empty coefficient (``0/0``) is *defined* as 0.0 —
    distance 1.0 — matching the bitmap implementations and the
    vectorized scoring engine: an empty fingerprint set never counts as
    a perfect match of another empty one.
    """
    inter, union = _intersection_and_union(a, b)
    if union == 0:
        return 0.0
    return inter / union


def jaccard_distance(a: FingerprintSet, b: FingerprintSet) -> float:
    """Jaccard distance ``1 - jaccard(a, b)`` — the paper's Equation 1.

    1.0 (maximally distant) for two empty sets; never a
    ``ZeroDivisionError``.
    """
    return 1.0 - jaccard(a, b)


def overlap_coefficient(a: FingerprintSet, b: FingerprintSet) -> float:
    """Szymkiewicz-Simpson overlap ``|A & B| / min(|A|, |B|)``.

    Useful when one trajectory is a motif (sub-trajectory) of the other:
    the Jaccard coefficient penalizes the length difference, the overlap
    coefficient does not.  Returns 1.0 when either set is empty.
    """
    inter, _ = _intersection_and_union(a, b)
    smaller = min(len(a), len(b))
    if smaller == 0:
        return 1.0
    return inter / smaller


def containment(query: FingerprintSet, target: FingerprintSet) -> float:
    """Broder containment ``|Q & T| / |Q|``: fraction of the query covered.

    Asymmetric by design — this is the measure used to detect that a
    query motif occurs somewhere inside a longer trajectory.
    """
    inter, _ = _intersection_and_union(query, target)
    if len(query) == 0:
        return 1.0
    return inter / len(query)
