"""Ground distance (paper Equation 2) in scalar and vectorized forms."""

from __future__ import annotations

import numpy as np

from ..geo.point import EARTH_RADIUS_M, Point, Trajectory, haversine, haversine_coords

__all__ = [
    "haversine",
    "haversine_coords",
    "pairwise_ground_distance",
    "trajectory_to_radians",
]


def trajectory_to_radians(points: Trajectory) -> np.ndarray:
    """Pack a trajectory into an ``(n, 2)`` array of radians (lat, lon)."""
    out = np.empty((len(points), 2), dtype=np.float64)
    for i, p in enumerate(points):
        out[i, 0] = p.lat
        out[i, 1] = p.lon
    return np.radians(out)


def pairwise_ground_distance(p: Trajectory, q: Trajectory) -> np.ndarray:
    """All-pairs haversine distances between two trajectories, in meters.

    Returns an ``(len(p), len(q))`` matrix.  This is the distance kernel
    shared by the DTW and discrete-Frechet dynamic programs.
    """
    a = trajectory_to_radians(p)
    b = trajectory_to_radians(q)
    lat_a = a[:, 0][:, None]
    lat_b = b[:, 0][None, :]
    d_lat = lat_b - lat_a
    d_lon = b[:, 1][None, :] - a[:, 1][:, None]
    h = (
        np.sin(d_lat / 2.0) ** 2
        + np.cos(lat_a) * np.cos(lat_b) * np.sin(d_lon / 2.0) ** 2
    )
    np.clip(h, 0.0, 1.0, out=h)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))
