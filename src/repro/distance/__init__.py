"""Distance measures: haversine, DTW, discrete Frechet, Jaccard."""

from .dtw import dtw, dtw_banded, dtw_reference
from .frechet import (
    discrete_frechet,
    discrete_frechet_matrix,
    frechet_reference,
    greedy_frechet_upper_bound,
)
from .haversine import (
    haversine,
    haversine_coords,
    pairwise_ground_distance,
    trajectory_to_radians,
)
from .jaccard import containment, jaccard, jaccard_distance, overlap_coefficient

__all__ = [
    "containment",
    "discrete_frechet",
    "discrete_frechet_matrix",
    "dtw",
    "dtw_banded",
    "dtw_reference",
    "frechet_reference",
    "greedy_frechet_upper_bound",
    "haversine",
    "haversine_coords",
    "jaccard",
    "jaccard_distance",
    "overlap_coefficient",
    "pairwise_ground_distance",
    "trajectory_to_radians",
]
