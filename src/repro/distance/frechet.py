"""Discrete Frechet distance between trajectories (paper Equation 4).

The discrete Frechet distance (DFD, Eiter & Mannila 1994) is the smallest
leash length that lets two walkers traverse the two trajectories in order.
Like DTW it costs O(n^2) per pair, and the motif-discovery baseline (BTM)
must evaluate it for O(n^4) sub-trajectory pairs — the costs characterized
in Sections VI-B and VI-C.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..geo.point import Point, Trajectory, haversine
from .haversine import pairwise_ground_distance

__all__ = [
    "discrete_frechet",
    "discrete_frechet_matrix",
    "frechet_reference",
    "greedy_frechet_upper_bound",
]


def discrete_frechet(p: Trajectory, q: Trajectory) -> float:
    """DFD between two non-empty trajectories, in meters.

    Iterative O(|p| * |q|) dynamic program with two rolling rows.
    """
    if not p or not q:
        raise ValueError("DFD of empty trajectory")
    dist = pairwise_ground_distance(p, q)
    return discrete_frechet_matrix(dist)


def discrete_frechet_matrix(dist) -> float:
    """DFD given a precomputed pairwise distance matrix.

    Exposed separately so the BTM baseline can reuse one matrix across the
    many sub-trajectory pairs it evaluates.
    """
    n, m = dist.shape
    if n == 0 or m == 0:
        raise ValueError("DFD of empty trajectory")
    previous = [0.0] * m
    row = dist[0]
    running = -math.inf
    for j in range(m):
        value = row[j]
        if value > running:
            running = value
        previous[j] = running
    current = [0.0] * m
    for i in range(1, n):
        row = dist[i]
        current[0] = row[0] if row[0] > previous[0] else previous[0]
        for j in range(1, m):
            reach = previous[j]
            diag = previous[j - 1]
            if diag < reach:
                reach = diag
            left = current[j - 1]
            if left < reach:
                reach = left
            value = row[j]
            current[j] = value if value > reach else reach
        previous, current = current, previous
    return previous[m - 1]


def frechet_reference(p: Trajectory, q: Trajectory) -> float:
    """Direct transcription of the paper's recursive Equation 4 (memoized).

    Only suitable for small inputs; tests use it as ground truth.
    """
    if not p or not q:
        raise ValueError("DFD of empty trajectory")

    @lru_cache(maxsize=None)
    def rec(i: int, j: int) -> float:
        d = haversine(p[i - 1], q[j - 1])
        if i == 1 and j == 1:
            return d
        candidates = []
        if i > 1:
            candidates.append(rec(i - 1, j))
        if j > 1:
            candidates.append(rec(i, j - 1))
        if i > 1 and j > 1:
            candidates.append(rec(i - 1, j - 1))
        return max(d, min(candidates))

    try:
        return rec(len(p), len(q))
    finally:
        rec.cache_clear()


def greedy_frechet_upper_bound(p: Trajectory, q: Trajectory) -> float:
    """Cheap O(n + m) upper bound on the DFD (greedy simultaneous walk).

    The BTM baseline uses it to seed its pruning threshold before paying
    for exact dynamic programs.
    """
    if not p or not q:
        raise ValueError("DFD of empty trajectory")
    i = j = 0
    bound = haversine(p[0], q[0])
    while i < len(p) - 1 or j < len(q) - 1:
        if i == len(p) - 1:
            j += 1
        elif j == len(q) - 1:
            i += 1
        else:
            advance_i = haversine(p[i + 1], q[j])
            advance_j = haversine(p[i], q[j + 1])
            advance_both = haversine(p[i + 1], q[j + 1])
            smallest = min(advance_i, advance_j, advance_both)
            if smallest == advance_both:
                i += 1
                j += 1
            elif smallest == advance_i:
                i += 1
            else:
                j += 1
        step = haversine(p[i], q[j])
        if step > bound:
            bound = step
    return bound
