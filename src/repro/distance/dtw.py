"""Dynamic Time Warping distance between trajectories (paper Equation 3).

DTW aligns two sequences by warping their time axes and sums the ground
distances of the aligned pairs.  Computing it for a pair of trajectories of
cumulated length n costs O(n^2) — the expense the paper's fingerprinting
approach is designed to avoid (Section VI-B).
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..geo.point import Point, Trajectory, haversine
from .haversine import pairwise_ground_distance

__all__ = ["dtw", "dtw_banded", "dtw_reference"]


def dtw(p: Trajectory, q: Trajectory) -> float:
    """DTW distance between two non-empty trajectories, in meters.

    Iterative O(|p| * |q|) dynamic program over the pairwise ground-distance
    matrix, using two rolling rows.
    """
    if not p or not q:
        raise ValueError("DTW of empty trajectory")
    dist = pairwise_ground_distance(p, q)
    n, m = dist.shape
    inf = math.inf
    previous = [inf] * (m + 1)
    previous[0] = 0.0
    current = [inf] * (m + 1)
    for i in range(1, n + 1):
        row = dist[i - 1]
        current[0] = inf
        for j in range(1, m + 1):
            best = previous[j]
            diag = previous[j - 1]
            if diag < best:
                best = diag
            left = current[j - 1]
            if left < best:
                best = left
            current[j] = row[j - 1] + best
        previous, current = current, previous
    return previous[m]


def dtw_banded(p: Trajectory, q: Trajectory, band: int) -> float:
    """DTW constrained to a Sakoe-Chiba band of half-width ``band``.

    A classical speed/quality trade-off: alignments may only deviate
    ``band`` steps from the diagonal.  With ``band >= max(|p|, |q|)`` this
    equals :func:`dtw`.  Returns ``inf`` when no in-band alignment exists
    (cannot happen for band >= |len(p) - len(q)|).
    """
    if not p or not q:
        raise ValueError("DTW of empty trajectory")
    if band < 0:
        raise ValueError("band must be non-negative")
    dist = pairwise_ground_distance(p, q)
    n, m = dist.shape
    inf = math.inf
    previous = [inf] * (m + 1)
    previous[0] = 0.0
    current = [inf] * (m + 1)
    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        if lo > hi:
            # The band misses this row entirely: no alignment exists.
            return inf
        row = dist[i - 1]
        current[lo - 1] = inf
        if lo == 1:
            current[0] = inf
        for j in range(lo, hi + 1):
            best = previous[j]
            diag = previous[j - 1]
            if diag < best:
                best = diag
            left = current[j - 1]
            if left < best:
                best = left
            current[j] = row[j - 1] + best
        for j in range(hi + 1, m + 1):
            current[j] = inf
        previous, current = current, previous
    return previous[m]


def dtw_reference(p: Trajectory, q: Trajectory) -> float:
    """Direct transcription of the paper's recursive Equation 3.

    Exponential without memoization, so it is memoized; still only suitable
    for small inputs.  Tests use it as the ground truth for :func:`dtw`.
    """
    if not p or not q:
        raise ValueError("DTW of empty trajectory")

    @lru_cache(maxsize=None)
    def rec(i: int, j: int) -> float:
        if i == 0 and j == 0:
            return 0.0
        if i == 0 or j == 0:
            return math.inf
        return haversine(p[i - 1], q[j - 1]) + min(
            rec(i - 1, j), rec(i, j - 1), rec(i - 1, j - 1)
        )

    try:
        return rec(len(p), len(q))
    finally:
        rec.cache_clear()
