"""Geodabs: trajectory indexing meets fingerprinting at scale.

Reproduction of Chapuis & Garbinato (ICDCS 2018).  The public API
re-exports the pieces a downstream user needs:

* fingerprinting: :class:`GeodabConfig`, :class:`Fingerprinter`
* indexing: :class:`GeodabIndex` (the paper's method), :class:`GeohashIndex`
  (the baseline), plus the sharded/distributed index in ``repro.cluster``
* motif discovery: :func:`find_common_motif` and the exact BTM baseline
  in ``repro.baselines``
* data: the synthetic London workload in ``repro.workload``
* geometry: :class:`Point`, :class:`Geohash`
* serving: :class:`IndexService` and the HTTP API in ``repro.service``
  (``geodabs serve``)

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from .core import (
    PAPER_CONFIG,
    Fingerprinter,
    FingerprintSet,
    GeodabConfig,
    GeodabIndex,
    GeodabScheme,
    GeohashIndex,
    MotifMatch,
    SearchResult,
    TrajectoryWinnower,
    discover_motif,
    find_common_motif,
)
from .geo import BBox, Geohash, Point, haversine
from .service import IndexService, QueryExecutor, start_server

__version__ = "1.0.0"

__all__ = [
    "BBox",
    "Fingerprinter",
    "FingerprintSet",
    "GeodabConfig",
    "GeodabIndex",
    "GeodabScheme",
    "Geohash",
    "GeohashIndex",
    "IndexService",
    "MotifMatch",
    "PAPER_CONFIG",
    "Point",
    "QueryExecutor",
    "SearchResult",
    "TrajectoryWinnower",
    "start_server",
    "discover_motif",
    "find_common_motif",
    "haversine",
    "__version__",
]
