"""Synthetic workload generation (paper Section VI-A1)."""

from .dataset import (
    FORWARD,
    REVERSE,
    QueryCase,
    TrajectoryDataset,
    TrajectoryRecord,
)
from .geolife import iter_plt_files, load_geolife, parse_plt
from .noise import DropoutNoise, GaussianGpsNoise
from .trajgen import PolylineWalker, WorkloadBuilder, sample_route_trajectory

__all__ = [
    "DropoutNoise",
    "FORWARD",
    "GaussianGpsNoise",
    "iter_plt_files",
    "load_geolife",
    "parse_plt",
    "PolylineWalker",
    "QueryCase",
    "REVERSE",
    "TrajectoryDataset",
    "TrajectoryRecord",
    "WorkloadBuilder",
    "sample_route_trajectory",
]
