"""GPS error models for the synthetic workload.

The paper's dataset adds "20 meters of random Gaussian noise to every
sampled point" (Section VI-A1).  Besides that Gaussian model, a dropout
model is provided for robustness tests (real receivers lose fixes in
urban canyons).
"""

from __future__ import annotations

import math
from random import Random

from ..geo.point import EARTH_RADIUS_M, Point, Trajectory

__all__ = ["GaussianGpsNoise", "DropoutNoise"]


class GaussianGpsNoise:
    """Isotropic Gaussian position noise of scale ``sigma_m`` meters.

    Each point is displaced by independent N(0, sigma) meters along the
    north and east axes.
    """

    __slots__ = ("sigma_m", "_rng")

    def __init__(self, sigma_m: float = 20.0, rng: Random | None = None) -> None:
        if sigma_m < 0:
            raise ValueError("sigma_m must be non-negative")
        self.sigma_m = sigma_m
        self._rng = rng if rng is not None else Random(0)

    def apply(self, point: Point) -> Point:
        """One noisy observation of a true position."""
        if self.sigma_m == 0.0:
            return point
        d_north = self._rng.gauss(0.0, self.sigma_m)
        d_east = self._rng.gauss(0.0, self.sigma_m)
        d_lat = math.degrees(d_north / EARTH_RADIUS_M)
        cos_lat = max(1e-12, math.cos(math.radians(point.lat)))
        d_lon = math.degrees(d_east / (EARTH_RADIUS_M * cos_lat))
        lat = min(90.0, max(-90.0, point.lat + d_lat))
        lon = (point.lon + d_lon + 540.0) % 360.0 - 180.0
        return Point(lat, lon)

    def apply_all(self, points: Trajectory) -> list[Point]:
        """Noisy observation of every point of a trajectory."""
        return [self.apply(p) for p in points]


class DropoutNoise:
    """Randomly drops points with probability ``drop_probability``.

    The first and last points always survive so the trajectory keeps its
    endpoints.
    """

    __slots__ = ("drop_probability", "_rng")

    def __init__(self, drop_probability: float, rng: Random | None = None) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self.drop_probability = drop_probability
        self._rng = rng if rng is not None else Random(0)

    def apply_all(self, points: Trajectory) -> list[Point]:
        """Trajectory with points randomly removed."""
        if len(points) <= 2:
            return list(points)
        kept = [points[0]]
        kept.extend(
            p
            for p in points[1:-1]
            if self._rng.random() >= self.drop_probability
        )
        kept.append(points[-1])
        return kept
