"""Synthetic trajectory generation (paper Section VI-A1).

Re-implements the workload generator of the paper's evaluation: routes
constrained to a road network produce groups of similar trajectories —
10 per direction by default — sampled at 1 Hz at the route's travel speed
with 20 m Gaussian noise per point.  Query trajectories are *fresh* noisy
recordings of a route (never inserted in the dataset), and their ground
truth is the set of records sharing the route and direction.
"""

from __future__ import annotations

from bisect import bisect_right
from random import Random
from typing import Sequence

from ..geo.point import Point, Trajectory, cumulative_lengths, interpolate
from ..roadnet.graph import RoadNetwork
from ..roadnet.router import Route, random_routes
from .dataset import FORWARD, REVERSE, QueryCase, TrajectoryDataset, TrajectoryRecord
from .noise import GaussianGpsNoise

__all__ = ["PolylineWalker", "sample_route_trajectory", "WorkloadBuilder"]


class PolylineWalker:
    """O(log n) positions along a polyline via precomputed arc lengths."""

    __slots__ = ("points", "offsets", "total_m")

    def __init__(self, points: Trajectory) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        self.points = list(points)
        self.offsets = cumulative_lengths(points)
        self.total_m = self.offsets[-1]

    def at(self, distance_m: float) -> Point:
        """Point at ``distance_m`` along the polyline (clamped to the ends)."""
        if distance_m <= 0.0:
            return self.points[0]
        if distance_m >= self.total_m:
            return self.points[-1]
        segment = bisect_right(self.offsets, distance_m) - 1
        segment = min(segment, len(self.points) - 2)
        seg_start = self.offsets[segment]
        seg_length = self.offsets[segment + 1] - seg_start
        if seg_length <= 0.0:
            return self.points[segment]
        fraction = (distance_m - seg_start) / seg_length
        return interpolate(self.points[segment], self.points[segment + 1], fraction)


def sample_route_trajectory(
    route: Route,
    sample_rate_hz: float = 1.0,
    noise: GaussianGpsNoise | None = None,
    speed_factor: float = 1.0,
) -> list[Point]:
    """One GPS recording of a vehicle following ``route``.

    The vehicle moves at the route's mean speed (derived from the
    router's travel-time estimate, as the paper derives speed from
    GraphHopper's route duration), scaled by ``speed_factor``; positions
    are sampled every ``1 / sample_rate_hz`` seconds and independently
    perturbed by ``noise``.
    """
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    if speed_factor <= 0:
        raise ValueError("speed_factor must be positive")
    walker = PolylineWalker(route.points)
    speed = route.mean_speed_mps * speed_factor
    if speed <= 0:
        raise ValueError("route has no positive speed")
    step_m = speed / sample_rate_hz
    out: list[Point] = []
    offset = 0.0
    while offset < walker.total_m:
        out.append(walker.at(offset))
        offset += step_m
    out.append(walker.at(walker.total_m))
    if noise is not None:
        out = noise.apply_all(out)
    return out


class WorkloadBuilder:
    """Builds dense synthetic datasets in the paper's configuration.

    Defaults correspond to Section VI-A1 scaled by the caller: the paper
    uses 5000 routes x (10 + 10) trajectories; benchmarks typically build
    a few hundred routes, which preserves density (trajectories per
    route) while keeping pure-Python runtimes sane.
    """

    def __init__(
        self,
        network: RoadNetwork,
        seed: int = 0,
        sample_rate_hz: float = 1.0,
        noise_sigma_m: float = 20.0,
        min_route_length_m: float = 2_000.0,
        speed_jitter: float = 0.15,
    ) -> None:
        if not 0.0 <= speed_jitter < 1.0:
            raise ValueError("speed_jitter must be in [0, 1)")
        self.network = network
        self.seed = seed
        self.sample_rate_hz = sample_rate_hz
        self.noise_sigma_m = noise_sigma_m
        self.min_route_length_m = min_route_length_m
        self.speed_jitter = speed_jitter

    def build_routes(self, num_routes: int) -> list[Route]:
        """Sample the unique routes underlying the dataset."""
        rng = Random(self.seed)
        return random_routes(
            self.network,
            num_routes,
            rng,
            min_length_m=self.min_route_length_m,
        )

    def _record(
        self,
        route: Route,
        route_id: int,
        direction: str,
        instance: int,
        rng: Random,
    ) -> TrajectoryRecord:
        noise = GaussianGpsNoise(self.noise_sigma_m, rng)
        factor = 1.0 + rng.uniform(-self.speed_jitter, self.speed_jitter)
        points = sample_route_trajectory(
            route,
            sample_rate_hz=self.sample_rate_hz,
            noise=noise,
            speed_factor=factor,
        )
        identifier = f"r{route_id:05d}-{direction[0]}{instance:02d}"
        return TrajectoryRecord(identifier, route_id, direction, tuple(points))

    def build(
        self,
        num_routes: int,
        trajectories_per_direction: int = 10,
        num_queries: int = 0,
        routes: Sequence[Route] | None = None,
    ) -> TrajectoryDataset:
        """Build a dataset (and optionally fresh queries with gold labels).

        Queries cycle over routes and alternate directions so both the
        direction-discrimination behaviour (Figure 12) and plain recall
        are exercised.
        """
        if trajectories_per_direction < 1:
            raise ValueError("trajectories_per_direction must be positive")
        if routes is None:
            routes = self.build_routes(num_routes)
        elif len(routes) < num_routes:
            raise ValueError("supplied fewer routes than num_routes")
        rng = Random(self.seed + 1)
        dataset = TrajectoryDataset()
        for route_id, route in enumerate(routes[:num_routes]):
            reverse_route = route.reversed()
            for instance in range(trajectories_per_direction):
                dataset.records.append(
                    self._record(route, route_id, FORWARD, instance, rng)
                )
                dataset.records.append(
                    self._record(reverse_route, route_id, REVERSE, instance, rng)
                )
        query_rng = Random(self.seed + 2)
        for q in range(num_queries):
            route_id = q % num_routes
            direction = FORWARD if (q // num_routes) % 2 == 0 else REVERSE
            route = routes[route_id]
            if direction == REVERSE:
                route = route.reversed()
            record = self._record(route, route_id, direction, 99, query_rng)
            dataset.queries.append(
                QueryCase(
                    query_id=f"q{q:04d}",
                    route_id=route_id,
                    direction=direction,
                    points=record.points,
                    relevant_ids=dataset.relevant_ids(route_id, direction),
                )
            )
        return dataset
