"""GeoLife-format trajectory loading (Zheng et al., reference [29]).

The paper discusses the Microsoft GeoLife dataset and finds it "too small
and too sparse" for its dense-retrieval evaluation — but it remains the
standard real-world corpus for trajectory work, so the library ships a
loader for its on-disk layout::

    <root>/<user-id>/Trajectory/<timestamp>.plt

Each ``.plt`` file carries six header lines followed by comma-separated
records ``lat,lon,0,altitude_ft,days,date,time``.  The loader performs
light hygiene (coordinate validation, optional minimum length) and
returns ordinary :class:`~repro.workload.dataset.TrajectoryRecord`
objects, so a GeoLife tree can be indexed exactly like the synthetic
workloads.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..geo.point import Point
from .dataset import TrajectoryDataset, TrajectoryRecord

__all__ = ["parse_plt", "load_geolife", "iter_plt_files"]

#: Number of header lines in a .plt file.
PLT_HEADER_LINES = 6


def parse_plt(path: str | Path) -> list[Point]:
    """Parse one ``.plt`` file into a list of points.

    Malformed lines and out-of-range coordinates are skipped (real
    GeoLife files contain occasional GPS glitches at lat/lon 0 or 400+);
    the record order of the file is preserved.
    """
    points: list[Point] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            if line_number < PLT_HEADER_LINES:
                continue
            parts = line.strip().split(",")
            if len(parts) < 2:
                continue
            try:
                lat = float(parts[0])
                lon = float(parts[1])
            except ValueError:
                continue
            if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
                continue
            if lat == 0.0 and lon == 0.0:
                continue  # the classic GPS cold-start glitch
            points.append(Point(lat, lon))
    return points


def iter_plt_files(root: str | Path) -> Iterator[tuple[str, Path]]:
    """Yield ``(user_id, plt_path)`` pairs of a GeoLife directory tree.

    Users and files are yielded in sorted order for determinism.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"{root} is not a directory")
    for user_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        trajectory_dir = user_dir / "Trajectory"
        if not trajectory_dir.is_dir():
            continue
        for plt_path in sorted(trajectory_dir.glob("*.plt")):
            yield user_dir.name, plt_path


def load_geolife(
    root: str | Path,
    min_points: int = 10,
    max_trajectories: int | None = None,
) -> TrajectoryDataset:
    """Load a GeoLife directory tree into a :class:`TrajectoryDataset`.

    Each ``.plt`` file becomes one record; records are grouped per user
    via synthetic route ids (one per user) so per-user retrieval
    experiments have a grouping to lean on.  Trajectories shorter than
    ``min_points`` are dropped.
    """
    if min_points < 0:
        raise ValueError("min_points must be non-negative")
    dataset = TrajectoryDataset()
    user_ids: dict[str, int] = {}
    for user, plt_path in iter_plt_files(root):
        if max_trajectories is not None and len(dataset) >= max_trajectories:
            break
        points = parse_plt(plt_path)
        if len(points) < min_points:
            continue
        route_id = user_ids.setdefault(user, len(user_ids))
        dataset.records.append(
            TrajectoryRecord(
                trajectory_id=f"{user}/{plt_path.stem}",
                route_id=route_id,
                direction="forward",
                points=tuple(points),
            )
        )
    return dataset
