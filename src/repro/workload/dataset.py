"""Trajectory dataset containers: records, queries, and ground truth.

The paper's evaluation needs three things traditional trajectory datasets
lack (Section VI-A1): density (many partially overlapping recordings),
query trajectories, and the associated ground truth.  A
:class:`TrajectoryDataset` carries all three: every record remembers the
route (and direction) it was generated from, so the relevant set of a
query is exactly the records sharing its route and direction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..geo.point import Point

__all__ = ["TrajectoryRecord", "QueryCase", "TrajectoryDataset"]

#: Direction labels of a route traversal.
FORWARD = "forward"
REVERSE = "reverse"


@dataclass(frozen=True, slots=True)
class TrajectoryRecord:
    """One synthetic GPS recording."""

    trajectory_id: str
    route_id: int
    direction: str
    points: tuple[Point, ...]

    @property
    def group(self) -> tuple[int, str]:
        """Ground-truth equivalence class: (route, direction)."""
        return (self.route_id, self.direction)


@dataclass(frozen=True, slots=True)
class QueryCase:
    """A query trajectory with its ground truth."""

    query_id: str
    route_id: int
    direction: str
    points: tuple[Point, ...]
    relevant_ids: frozenset[str]


@dataclass
class TrajectoryDataset:
    """A dense synthetic trajectory dataset with queries and gold labels."""

    records: list[TrajectoryRecord] = field(default_factory=list)
    queries: list[QueryCase] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TrajectoryRecord]:
        return iter(self.records)

    def record_by_id(self, trajectory_id: str) -> TrajectoryRecord:
        """Lookup a record by identifier (linear; datasets are in-memory)."""
        for record in self.records:
            if record.trajectory_id == trajectory_id:
                return record
        raise KeyError(trajectory_id)

    def relevant_ids(self, route_id: int, direction: str) -> frozenset[str]:
        """Identifiers of records sharing a route and direction."""
        return frozenset(
            r.trajectory_id
            for r in self.records
            if r.route_id == route_id and r.direction == direction
        )

    def groups(self) -> dict[tuple[int, str], list[TrajectoryRecord]]:
        """Records bucketed by (route, direction)."""
        out: dict[tuple[int, str], list[TrajectoryRecord]] = {}
        for record in self.records:
            out.setdefault(record.group, []).append(record)
        return out

    def total_points(self) -> int:
        """Number of GPS points across all records."""
        return sum(len(r.points) for r in self.records)

    # ------------------------------------------------------------------
    # Persistence (JSON lines; adequate for example scripts)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the dataset as JSON lines (records then queries)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(
                    json.dumps(
                        {
                            "kind": "record",
                            "id": record.trajectory_id,
                            "route": record.route_id,
                            "direction": record.direction,
                            "points": [[p.lat, p.lon] for p in record.points],
                        }
                    )
                    + "\n"
                )
            for query in self.queries:
                handle.write(
                    json.dumps(
                        {
                            "kind": "query",
                            "id": query.query_id,
                            "route": query.route_id,
                            "direction": query.direction,
                            "points": [[p.lat, p.lon] for p in query.points],
                            "relevant": sorted(query.relevant_ids),
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "TrajectoryDataset":
        """Inverse of :meth:`save`."""
        dataset = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                points = tuple(Point(lat, lon) for lat, lon in data["points"])
                if data["kind"] == "record":
                    dataset.records.append(
                        TrajectoryRecord(
                            data["id"], data["route"], data["direction"], points
                        )
                    )
                elif data["kind"] == "query":
                    dataset.queries.append(
                        QueryCase(
                            data["id"],
                            data["route"],
                            data["direction"],
                            points,
                            frozenset(data["relevant"]),
                        )
                    )
                else:
                    raise ValueError(f"unknown row kind {data['kind']!r}")
        return dataset
