"""Baseline algorithms the paper compares against."""

from .btm import BtmResult, btm_motif, naive_motif

__all__ = ["BtmResult", "btm_motif", "naive_motif"]
