"""Bounding-based Trajectory Motif (BTM) — exact motif discovery baseline.

Re-implementation of the approach the paper compares against in Figure 11
(Tang et al., "Efficient motif discovery in spatial trajectories using
discrete Frechet distance", EDBT 2017): given two trajectories and a motif
length ``l`` (in points), find the pair of length-``l`` sub-trajectories
minimizing their discrete Frechet distance — exactly.

A naive scan evaluates DFD (O(l^2)) for every one of the
O(|P| * |Q|) window pairs.  BTM keeps the result exact but prunes pairs
whose cheap *lower bound* already exceeds the best DFD found so far:

* endpoint bound — DFD couples first-with-first and last-with-last, so
  ``max(d(P_i, Q_j), d(P_(i+l-1), Q_(j+l-1)))`` never exceeds the DFD;
* MBR bound — every coupled pair is at least the minimum distance between
  the windows' minimum bounding rectangles apart.

Both bounds are sound, so pruning never changes the returned optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distance.frechet import discrete_frechet_matrix
from ..distance.haversine import pairwise_ground_distance
from ..geo.bbox import BBox, bbox_of
from ..geo.point import Trajectory

__all__ = ["BtmResult", "btm_motif", "naive_motif"]


@dataclass(frozen=True, slots=True)
class BtmResult:
    """Exact motif-discovery answer.

    ``start_i``/``start_j`` are the window start offsets in the two input
    trajectories; both windows have the requested length.  ``evaluated``
    and ``pruned`` count exact-DFD evaluations and lower-bound prunes —
    the work measure plotted in Figure 11.
    """

    start_i: int
    start_j: int
    length: int
    distance: float
    evaluated: int
    pruned: int


def _window_boxes(points: Trajectory, length: int) -> list[BBox]:
    """Bounding boxes of all length-``length`` windows of a trajectory."""
    return [
        bbox_of(points[i : i + length]) for i in range(len(points) - length + 1)
    ]


def btm_motif(p: Trajectory, q: Trajectory, length: int) -> BtmResult:
    """Exact best motif pair of ``length`` points under DFD, with pruning.

    Raises ``ValueError`` when either trajectory is shorter than the motif.
    """
    if length < 1:
        raise ValueError("motif length must be positive")
    if len(p) < length or len(q) < length:
        raise ValueError("trajectory shorter than the requested motif length")
    dist = pairwise_ground_distance(p, q)
    n_windows_p = len(p) - length + 1
    n_windows_q = len(q) - length + 1
    boxes_p = _window_boxes(p, length)
    boxes_q = _window_boxes(q, length)

    # Endpoint lower bounds for every window pair, fully vectorized:
    # lb[i, j] = max(dist[i, j], dist[i + length - 1, j + length - 1]).
    head = dist[:n_windows_p, :n_windows_q]
    tail = dist[length - 1 :, length - 1 :][:n_windows_p, :n_windows_q]
    endpoint_lb = np.maximum(head, tail)

    # Visit pairs in increasing endpoint-bound order: the first exact
    # evaluations are the most promising, which tightens the threshold
    # early and maximizes subsequent pruning.
    order = np.argsort(endpoint_lb, axis=None, kind="stable")

    best = np.inf
    best_pair = (0, 0)
    evaluated = 0
    pruned = 0
    for flat in order:
        i, j = divmod(int(flat), n_windows_q)
        bound = endpoint_lb[i, j]
        if bound >= best:
            # The order is sorted by this bound: every remaining pair is
            # at least as bad, so the scan can stop outright.
            pruned += n_windows_p * n_windows_q - evaluated - pruned
            break
        if boxes_p[i].min_distance_to(boxes_q[j]) >= best:
            pruned += 1
            continue
        exact = discrete_frechet_matrix(dist[i : i + length, j : j + length])
        evaluated += 1
        if exact < best:
            best = exact
            best_pair = (i, j)
    return BtmResult(
        start_i=best_pair[0],
        start_j=best_pair[1],
        length=length,
        distance=float(best),
        evaluated=evaluated,
        pruned=pruned,
    )


def naive_motif(p: Trajectory, q: Trajectory, length: int) -> BtmResult:
    """Exact motif discovery with no pruning (reference for tests).

    Evaluates DFD for every window pair; asymptotically the
    O(n^4)-flavoured cost the paper attributes to exact motif discovery.
    """
    if length < 1:
        raise ValueError("motif length must be positive")
    if len(p) < length or len(q) < length:
        raise ValueError("trajectory shorter than the requested motif length")
    dist = pairwise_ground_distance(p, q)
    best = np.inf
    best_pair = (0, 0)
    evaluated = 0
    for i in range(len(p) - length + 1):
        for j in range(len(q) - length + 1):
            exact = discrete_frechet_matrix(dist[i : i + length, j : j + length])
            evaluated += 1
            if exact < best:
                best = exact
                best_pair = (i, j)
    return BtmResult(
        start_i=best_pair[0],
        start_j=best_pair[1],
        length=length,
        distance=float(best),
        evaluated=evaluated,
        pruned=0,
    )
