"""Command-line interface for the geodab reproduction.

Four subcommands cover the end-to-end workflow:

* ``repro generate`` — synthesize a dense London-style dataset with
  queries and ground truth, saved as JSON lines;
* ``repro evaluate`` — index a saved dataset (geodabs and the geohash
  baseline) and print retrieval-quality tables;
* ``repro query`` — run one saved query against a chosen index and show
  the ranked results against the gold labels;
* ``repro serve`` — run the concurrent query-serving HTTP API over a
  (optionally sharded) geodab index.

Example::

    repro generate --routes 10 --queries 5 --out /tmp/ds.jsonl
    repro evaluate --dataset /tmp/ds.jsonl
    repro query --dataset /tmp/ds.jsonl --query-id q0000
    repro serve --dataset /tmp/ds.jsonl --port 8008 --shards 8
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

from .bench.report import print_table
from .core.baseline import GeohashIndex
from .core.config import GeodabConfig
from .core.index import GeodabIndex
from .ir.metrics import auc, average_precision, roc_curve
from .normalize import standard_normalizer
from .roadnet.generator import generate_city_network
from .workload.dataset import TrajectoryDataset
from .workload.trajgen import WorkloadBuilder

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Geodabs: trajectory indexing meets fingerprinting at scale",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a dense trajectory dataset"
    )
    generate.add_argument("--routes", type=int, default=10)
    generate.add_argument("--per-direction", type=int, default=10)
    generate.add_argument("--queries", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--half-side-m", type=float, default=3_000.0)
    generate.add_argument("--spacing-m", type=float, default=250.0)
    generate.add_argument("--noise-m", type=float, default=20.0)
    generate.add_argument("--out", required=True)

    evaluate = commands.add_parser(
        "evaluate", help="index a dataset and report retrieval quality"
    )
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--depth", type=int, default=36)
    evaluate.add_argument("--k", type=int, default=6)
    evaluate.add_argument("--t", type=int, default=12)

    query = commands.add_parser(
        "query", help="run one saved query against an index"
    )
    query.add_argument("--dataset", required=True)
    query.add_argument("--query-id", required=True)
    query.add_argument(
        "--index", choices=("geodabs", "geohash"), default="geodabs"
    )
    query.add_argument("--limit", type=int, default=10)
    query.add_argument("--depth", type=int, default=36)

    serve = commands.add_parser(
        "serve", help="run the concurrent query-serving HTTP API"
    )
    serve.add_argument("--dataset", help="JSONL dataset to pre-ingest")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8008)
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard the index (0 = single-node GeodabIndex)",
    )
    serve.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="simulated cluster nodes (default: one node per 8 shards, "
        "so large --shards counts spread instead of piling onto 2 nodes)",
    )
    serve.add_argument(
        "--placement",
        choices=("range", "hash"),
        default=None,
        help="term->shard placement: 'range' preserves z-order locality "
        "(world-scale), 'hash' spreads a single region over all shards "
        "(default: hash)",
    )
    serve.add_argument(
        "--transport",
        choices=("inprocess", "process"),
        default="inprocess",
        help="shard transport: 'inprocess' serves shards from the "
        "coordinator's own threads; 'process' spawns snapshot-mmap "
        "worker processes (requires --shards and --snapshot-dir) so "
        "shard scans run outside the coordinator's GIL",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="with --transport inprocess: shard fan-out thread pool "
        "size, default 8 (0 = sequential fan-out); with --transport "
        "process: worker process count, default 2",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="micro-batch window for concurrent queries (0 = off)",
    )
    serve.add_argument(
        "--shard-timeout-ms",
        type=float,
        default=None,
        help="per-shard contact budget: a shard that exceeds it is "
        "written off and the query answers degraded from the rest "
        "(default: wait forever)",
    )
    serve.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        help="send one duplicate contact for a shard whose primary "
        "hasn't answered after this long; first answer wins "
        "(default: never hedge)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission cap: shed concurrent requests beyond this with "
        "429 + Retry-After (probes and /metrics exempt; default: "
        "unlimited)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM/SIGINT "
        "before closing anyway (default 10)",
    )
    serve.add_argument(
        "--rpc-latency-ms",
        type=float,
        default=0.0,
        help="simulated per-shard contact latency",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="result/fingerprint cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--snapshot-dir",
        help="snapshot directory: warm-start from its current v2 "
        "snapshot when one exists (skipping raw ingest) and serve "
        "POST /admin/snapshot writes into it",
    )
    serve.add_argument(
        "--snapshot-keep",
        type=int,
        default=None,
        help="garbage-collect superseded snapshots after each "
        "POST /admin/snapshot, keeping this many recent ones (the "
        "CURRENT snapshot is always kept; default: keep everything)",
    )
    serve.add_argument(
        "--maintenance-interval",
        type=float,
        default=30.0,
        help="background maintenance tick in seconds: re-evaluates the "
        "compaction policy even when writes are idle (0 disables the "
        "maintenance thread; default 30)",
    )
    serve.add_argument(
        "--mmap",
        choices=("off", "r"),
        default="r",
        help="how to load snapshot postings blobs: 'r' memory-maps them "
        "(instant warm start, pages in lazily), 'off' copies into RAM",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log queries slower than this many milliseconds into the "
        "slow-query ring buffer (GET /admin/slowlog; default: disabled)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help="fraction of requests (0..1) to record a full span tree "
        "for, emitted as JSON lines through the repro.service.trace "
        "logger (default 0; ?trace=1 always records)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access-log line per request "
        "(method, path, status, latency, trace id) to stderr",
    )
    serve.add_argument("--depth", type=int, default=36)
    serve.add_argument("--k", type=int, default=6)
    serve.add_argument("--t", type=int, default=12)
    serve.add_argument(
        "--variant",
        action="append",
        default=None,
        metavar="NAME=depth,k,t[,scheme]",
        help="register an extra fingerprint variant at index "
        "construction (repeatable); queries select it with a spec "
        "{'variant': NAME} or 'auto' (densest registered).  Ignored on "
        "warm start: the snapshot fixes the variant registry",
    )
    serve.add_argument("--verbose", action="store_true")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    network = generate_city_network(
        half_side_m=args.half_side_m, spacing_m=args.spacing_m, seed=args.seed
    )
    builder = WorkloadBuilder(
        network, seed=args.seed, noise_sigma_m=args.noise_m
    )
    dataset = builder.build(
        args.routes,
        trajectories_per_direction=args.per_direction,
        num_queries=args.queries,
    )
    dataset.save(args.out)
    print(
        f"wrote {len(dataset)} trajectories "
        f"({dataset.total_points():,} points) and "
        f"{len(dataset.queries)} queries to {args.out}"
    )
    return 0


def _build_indexes(dataset: TrajectoryDataset, depth: int, k: int, t: int):
    normalizer = standard_normalizer(depth)
    geodab = GeodabIndex(
        GeodabConfig(normalization_depth=depth, k=k, t=t), normalizer=normalizer
    )
    geohash = GeohashIndex(depth, normalizer=normalizer)
    records = [(r.trajectory_id, r.points) for r in dataset.records]
    # Bulk insert: the geodab index fingerprints the whole dataset
    # through the vectorized batch pipeline.
    geodab.add_many(records)
    geohash.add_many(records)
    return geodab, geohash


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    if not dataset.queries:
        print("dataset has no queries; regenerate with --queries", file=sys.stderr)
        return 1
    geodab, geohash = _build_indexes(dataset, args.depth, args.k, args.t)
    rows = []
    for name, index in (("geodabs", geodab), ("geohash", geohash)):
        maps, aucs, candidates = [], [], 0
        for query in dataset.queries:
            results, stats = index.query_with_stats(query.points)
            ranked = [r.trajectory_id for r in results]
            candidates += stats.candidates
            if ranked:
                maps.append(average_precision(ranked, query.relevant_ids))
                fpr, tpr = roc_curve(ranked, query.relevant_ids, len(dataset))
                aucs.append(auc(fpr, tpr))
        rows.append(
            [
                name,
                sum(maps) / max(1, len(maps)),
                sum(aucs) / max(1, len(aucs)),
                candidates / len(dataset.queries),
            ]
        )
    print_table(
        f"Retrieval quality on {args.dataset} "
        f"(depth={args.depth}, k={args.k}, t={args.t})",
        ["index", "MAP", "AUC", "candidates/query"],
        rows,
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    matches = [q for q in dataset.queries if q.query_id == args.query_id]
    if not matches:
        known = ", ".join(q.query_id for q in dataset.queries[:10])
        print(
            f"unknown query {args.query_id!r}; available: {known}",
            file=sys.stderr,
        )
        return 1
    query = matches[0]
    geodab, geohash = _build_indexes(dataset, args.depth, 6, 12)
    index = geodab if args.index == "geodabs" else geohash
    results = index.query(query.points, limit=args.limit)
    rows = [
        [
            rank,
            result.trajectory_id,
            result.distance,
            "yes" if result.trajectory_id in query.relevant_ids else "",
        ]
        for rank, result in enumerate(results, start=1)
    ]
    print_table(
        f"{args.index} results for {query.query_id} "
        f"(route {query.route_id}, {query.direction})",
        ["rank", "trajectory", "distance", "relevant"],
        rows,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    import time as time_module

    from .cluster import ShardedGeodabIndex, ShardingConfig
    from .core.persistence import load_index, publish_snapshot, resolve_snapshot
    from .core.registry import VariantSpec
    from .service import (
        IndexService,
        QueryExecutor,
        ServiceHTTPServer,
        TransportError,
        WorkerProcessTransport,
        shutdown_gracefully,
    )

    config = GeodabConfig(normalization_depth=args.depth, k=args.k, t=args.t)
    normalizer = standard_normalizer(args.depth)
    executor = None
    dataset_preingested = None
    process_mode = args.transport == "process"
    if process_mode and not args.snapshot_dir:
        print(
            "error: --transport process requires --snapshot-dir (workers "
            "serve the published snapshot)",
            file=sys.stderr,
        )
        return 2
    if args.shard_timeout_ms is not None and args.shard_timeout_ms <= 0:
        print("error: --shard-timeout-ms must be positive", file=sys.stderr)
        return 2
    if args.hedge_after_ms is not None and args.hedge_after_ms < 0:
        print("error: --hedge-after-ms must be non-negative", file=sys.stderr)
        return 2
    if args.max_inflight is not None and args.max_inflight < 1:
        print("error: --max-inflight must be positive", file=sys.stderr)
        return 2
    if args.drain_timeout < 0:
        print("error: --drain-timeout must be non-negative", file=sys.stderr)
        return 2
    try:
        variants = tuple(
            VariantSpec.parse(flag) for flag in (args.variant or ())
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def make_executor(index, pool_size, transport=None):
        return QueryExecutor(
            index,
            pool_size=pool_size,
            rpc_latency_s=args.rpc_latency_ms / 1000.0,
            batch_window_s=args.batch_window_ms / 1000.0,
            transport=transport,
            shard_timeout_s=(
                args.shard_timeout_ms / 1000.0
                if args.shard_timeout_ms is not None
                else None
            ),
            hedge_after_s=(
                args.hedge_after_ms / 1000.0
                if args.hedge_after_ms is not None
                else None
            ),
        )
    # Warm start: when --snapshot-dir holds a published snapshot, load
    # the columnar state straight off disk (memory-mapped by default)
    # instead of rebuilding from raw ingest.  The snapshot fixes the
    # config, sharding geometry and variant registry, so --depth/--k/
    # --t/--shards/--nodes/--placement/--variant are ignored in that
    # case; the executor knobs still apply when the snapshot is sharded.
    warm_snapshot = None
    if args.snapshot_dir:
        warm_snapshot = resolve_snapshot(args.snapshot_dir)
    if warm_snapshot is not None:
        try:
            index = load_index(
                warm_snapshot,
                mmap_mode=None if args.mmap == "off" else args.mmap,
            )
        except ValueError as exc:
            print(
                f"error: cannot load snapshot {warm_snapshot}: {exc}",
                file=sys.stderr,
            )
            return 2
        # Normalizers are not persisted; serve always uses the standard
        # pipeline at the snapshot's own normalization depth.
        index.normalizer = standard_normalizer(
            index.config.normalization_depth
        )
        if process_mode and not isinstance(index, ShardedGeodabIndex):
            print(
                "error: --transport process requires a sharded snapshot",
                file=sys.stderr,
            )
            return 2
        if isinstance(index, ShardedGeodabIndex):
            try:
                if process_mode:
                    workers = 2 if args.workers is None else args.workers
                    transport = WorkerProcessTransport(
                        warm_snapshot, num_workers=workers
                    )
                    executor = make_executor(
                        index, min(32, index.num_shards), transport
                    )
                else:
                    workers = 8 if args.workers is None else args.workers
                    executor = make_executor(index, workers)
            except (ValueError, TransportError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            workers = 0
    elif args.shards == 0:
        sharding_only = {
            "--rpc-latency-ms": args.rpc_latency_ms > 0,
            "--batch-window-ms": args.batch_window_ms > 0,
            "--workers": args.workers is not None,
            "--nodes": args.nodes is not None,
            "--placement": args.placement is not None,
            "--transport process": process_mode,
            "--shard-timeout-ms": args.shard_timeout_ms is not None,
            "--hedge-after-ms": args.hedge_after_ms is not None,
        }
        misused = [flag for flag, used in sharding_only.items() if used]
        if misused:
            print(
                f"error: {'/'.join(misused)} require a sharded index "
                "(pass --shards N)",
                file=sys.stderr,
            )
            return 2
        # Fresh serve indexes retain raw trajectories so exact_knn /
        # exact_range queries work out of the box (v3 snapshots persist
        # them, so warm starts keep exact serving too).
        index = GeodabIndex(
            config,
            normalizer=normalizer,
            store_points=True,
            variants=variants,
        )
        workers = 0
    else:
        if args.nodes is not None:
            nodes = args.nodes
        else:
            # One node per 8 shards (clamped to [1, shards]): small
            # clusters stay compact while --shards 128 gets 16 nodes
            # instead of piling every shard onto 2.
            nodes = max(1, min(args.shards, -(-args.shards // 8)))
        try:
            sharding = ShardingConfig(
                num_shards=args.shards,
                num_nodes=nodes,
                placement=args.placement or "hash",
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        index = ShardedGeodabIndex(
            config,
            sharding,
            normalizer=normalizer,
            store_points=True,
            variants=variants,
        )
        if process_mode:
            # Cold-start process serving: the workers serve a published
            # snapshot, so the dataset (if any) is indexed *now*, a boot
            # snapshot is published into --snapshot-dir, and the worker
            # pool attaches it before the HTTP tier comes up.  Later
            # writes land in the coordinator index; workers pick them up
            # at the next POST /admin/snapshot (which re-points them).
            workers = 2 if args.workers is None else args.workers
            if args.dataset:
                dataset = TrajectoryDataset.load(args.dataset)
                index.add_many(
                    (record.trajectory_id, record.points)
                    for record in dataset.records
                )
                dataset_preingested = len(dataset)
            try:
                boot_snapshot = publish_snapshot(
                    index,
                    args.snapshot_dir,
                    tag=f"boot-{time_module.time_ns():x}",
                )
                transport = WorkerProcessTransport(
                    boot_snapshot, num_workers=workers
                )
                executor = make_executor(
                    index, min(32, index.num_shards), transport
                )
            except (ValueError, TransportError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            workers = 8 if args.workers is None else args.workers
            # Always route sharded queries through the executor so the
            # latency/batching knobs apply to --workers 0 (sequential
            # fan-out) too, not just the pooled configurations.
            try:
                executor = make_executor(index, workers)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    if args.snapshot_keep is not None and args.snapshot_keep < 1:
        print("error: --snapshot-keep must be positive", file=sys.stderr)
        return 2
    if args.maintenance_interval < 0:
        print("error: --maintenance-interval must be non-negative", file=sys.stderr)
        return 2
    if args.slow_query_ms is not None and args.slow_query_ms < 0:
        print("error: --slow-query-ms must be non-negative", file=sys.stderr)
        return 2
    try:
        service = IndexService(
            index,
            executor=executor,
            result_cache_size=args.cache_size,
            fingerprint_cache_size=args.cache_size,
            maintenance_interval_s=(
                args.maintenance_interval if args.maintenance_interval > 0 else None
            ),
            slow_query_ms=args.slow_query_ms,
            trace_sample=args.trace_sample,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.access_log:
        # One JSON object per request on stderr; the logger namespace
        # lets embedders reroute or silence it without touching ours.
        logging.basicConfig(stream=sys.stderr, format="%(message)s")
        logging.getLogger("repro.service").setLevel(logging.INFO)
    # Bind before the (potentially long) dataset ingest so an occupied
    # port fails fast and cleanly.  The server starts *not ready*
    # (GET /readyz says 503) until warm start / initial ingest lands.
    try:
        server = ServiceHTTPServer(
            (args.host, args.port),
            service,
            verbose=args.verbose,
            snapshot_dir=args.snapshot_dir,
            snapshot_keep=args.snapshot_keep,
            access_log=args.access_log,
            ready=False,
            max_inflight=args.max_inflight,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    if warm_snapshot is not None:
        print(
            f"warm start: loaded {len(index)} trajectories from snapshot "
            f"{warm_snapshot}"
        )
        if args.dataset:
            print(
                f"note: --dataset {args.dataset} ignored (snapshot takes "
                "precedence); POST /trajectories still accepts new data"
            )
        if args.variant:
            print(
                "note: --variant ignored (the snapshot fixes the "
                "fingerprint variant registry)"
            )
    elif dataset_preingested is not None:
        print(
            f"ingested {dataset_preingested} trajectories from "
            f"{args.dataset} (published as the workers' boot snapshot)"
        )
    elif args.dataset:
        dataset = TrajectoryDataset.load(args.dataset)
        count, _ = service.ingest(
            (record.trajectory_id, record.points) for record in dataset.records
        )
        print(f"ingested {count} trajectories from {args.dataset}")
    if isinstance(index, ShardedGeodabIndex):
        if process_mode:
            shape = (
                f"{index.sharding.num_shards} shards / "
                f"{index.sharding.num_nodes} nodes, "
                f"{workers} worker processes"
            )
        else:
            shape = (
                f"{index.sharding.num_shards} shards / "
                f"{index.sharding.num_nodes} nodes, {workers} fan-out workers"
            )
    else:
        shape = "single-node"
    server.mark_ready()
    print(f"serving geodab index ({shape}) at {server.url}")
    # Flush before blocking: under a piped stdout (CI log capture,
    # process supervisors) the boot lines would otherwise sit in the
    # stdio buffer until shutdown.
    print("endpoints: POST /trajectories, DELETE /trajectories/{id}, "
          "POST /query[?trace=1], POST /query/batch, POST /admin/snapshot, "
          "GET /stats, GET /metrics, GET /admin/slowlog, "
          "GET /healthz, GET /readyz", flush=True)
    # Graceful shutdown: the accept loop runs in a daemon thread while
    # the main thread waits for a stop signal, because server.shutdown()
    # deadlocks when called from the serve_forever thread itself.
    # SIGTERM/SIGINT trigger the ordered teardown: stop accepting, drain
    # in-flight requests (bounded by --drain-timeout), close the service
    # (maintenance daemon, executor pool, worker processes), release the
    # socket.
    stop = threading.Event()

    def _signal_handler(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    signal.signal(signal.SIGTERM, _signal_handler)
    signal.signal(signal.SIGINT, _signal_handler)
    serve_thread = threading.Thread(
        target=server.serve_forever, name="geodab-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("shutting down: draining in-flight requests", flush=True)
    outcome = shutdown_gracefully(
        server, service, drain_timeout_s=args.drain_timeout
    )
    serve_thread.join(timeout=5.0)
    if outcome["drained"]:
        print("shutdown complete")
    else:
        print(
            f"shutdown complete ({outcome['inflight_abandoned']} in-flight "
            f"requests abandoned after {args.drain_timeout:.0f}s)"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
