"""Command-line interface for the geodab reproduction.

Three subcommands cover the end-to-end workflow:

* ``repro generate`` — synthesize a dense London-style dataset with
  queries and ground truth, saved as JSON lines;
* ``repro evaluate`` — index a saved dataset (geodabs and the geohash
  baseline) and print retrieval-quality tables;
* ``repro query`` — run one saved query against a chosen index and show
  the ranked results against the gold labels.

Example::

    repro generate --routes 10 --queries 5 --out /tmp/ds.jsonl
    repro evaluate --dataset /tmp/ds.jsonl
    repro query --dataset /tmp/ds.jsonl --query-id q0000
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench.report import print_table
from .core.baseline import GeohashIndex
from .core.config import GeodabConfig
from .core.index import GeodabIndex
from .ir.metrics import auc, average_precision, roc_curve
from .normalize import standard_normalizer
from .roadnet.generator import generate_city_network
from .workload.dataset import TrajectoryDataset
from .workload.trajgen import WorkloadBuilder

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Geodabs: trajectory indexing meets fingerprinting at scale",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a dense trajectory dataset"
    )
    generate.add_argument("--routes", type=int, default=10)
    generate.add_argument("--per-direction", type=int, default=10)
    generate.add_argument("--queries", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--half-side-m", type=float, default=3_000.0)
    generate.add_argument("--spacing-m", type=float, default=250.0)
    generate.add_argument("--noise-m", type=float, default=20.0)
    generate.add_argument("--out", required=True)

    evaluate = commands.add_parser(
        "evaluate", help="index a dataset and report retrieval quality"
    )
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--depth", type=int, default=36)
    evaluate.add_argument("--k", type=int, default=6)
    evaluate.add_argument("--t", type=int, default=12)

    query = commands.add_parser(
        "query", help="run one saved query against an index"
    )
    query.add_argument("--dataset", required=True)
    query.add_argument("--query-id", required=True)
    query.add_argument(
        "--index", choices=("geodabs", "geohash"), default="geodabs"
    )
    query.add_argument("--limit", type=int, default=10)
    query.add_argument("--depth", type=int, default=36)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    network = generate_city_network(
        half_side_m=args.half_side_m, spacing_m=args.spacing_m, seed=args.seed
    )
    builder = WorkloadBuilder(
        network, seed=args.seed, noise_sigma_m=args.noise_m
    )
    dataset = builder.build(
        args.routes,
        trajectories_per_direction=args.per_direction,
        num_queries=args.queries,
    )
    dataset.save(args.out)
    print(
        f"wrote {len(dataset)} trajectories "
        f"({dataset.total_points():,} points) and "
        f"{len(dataset.queries)} queries to {args.out}"
    )
    return 0


def _build_indexes(dataset: TrajectoryDataset, depth: int, k: int, t: int):
    normalizer = standard_normalizer(depth)
    geodab = GeodabIndex(
        GeodabConfig(normalization_depth=depth, k=k, t=t), normalizer=normalizer
    )
    geohash = GeohashIndex(depth, normalizer=normalizer)
    for record in dataset.records:
        geodab.add(record.trajectory_id, record.points)
        geohash.add(record.trajectory_id, record.points)
    return geodab, geohash


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    if not dataset.queries:
        print("dataset has no queries; regenerate with --queries", file=sys.stderr)
        return 1
    geodab, geohash = _build_indexes(dataset, args.depth, args.k, args.t)
    rows = []
    for name, index in (("geodabs", geodab), ("geohash", geohash)):
        maps, aucs, candidates = [], [], 0
        for query in dataset.queries:
            results, stats = index.query_with_stats(query.points)
            ranked = [r.trajectory_id for r in results]
            candidates += stats.candidates
            if ranked:
                maps.append(average_precision(ranked, query.relevant_ids))
                fpr, tpr = roc_curve(ranked, query.relevant_ids, len(dataset))
                aucs.append(auc(fpr, tpr))
        rows.append(
            [
                name,
                sum(maps) / max(1, len(maps)),
                sum(aucs) / max(1, len(aucs)),
                candidates / len(dataset.queries),
            ]
        )
    print_table(
        f"Retrieval quality on {args.dataset} "
        f"(depth={args.depth}, k={args.k}, t={args.t})",
        ["index", "MAP", "AUC", "candidates/query"],
        rows,
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    matches = [q for q in dataset.queries if q.query_id == args.query_id]
    if not matches:
        known = ", ".join(q.query_id for q in dataset.queries[:10])
        print(
            f"unknown query {args.query_id!r}; available: {known}",
            file=sys.stderr,
        )
        return 1
    query = matches[0]
    geodab, geohash = _build_indexes(dataset, args.depth, 6, 12)
    index = geodab if args.index == "geodabs" else geohash
    results = index.query(query.points, limit=args.limit)
    rows = [
        [
            rank,
            result.trajectory_id,
            result.distance,
            "yes" if result.trajectory_id in query.relevant_ids else "",
        ]
        for rank, result in enumerate(results, start=1)
    ]
    print_table(
        f"{args.index} results for {query.query_id} "
        f"(route {query.route_id}, {query.direction})",
        ["rank", "trajectory", "distance", "relevant"],
        rows,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "query":
        return _cmd_query(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
