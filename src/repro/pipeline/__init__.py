"""Batch-first vectorized fingerprinting pipeline.

Composes the array-based stages — batch geohash encoding
(:mod:`repro.geo.batch`), vectorized k-gram hashing and sliding-window
minima (:mod:`repro.hashing.batch`) — into the
:class:`BatchFingerprinter` engine that every layer above shares:
``Fingerprinter.fingerprint_many`` delegates here, the indexes'
``add_many`` bulk inserts build on it, and ``IndexService.ingest``
fingerprints whole batches through it before taking its write lock.
"""

from .batch import BatchFingerprinter, winnow_array

__all__ = ["BatchFingerprinter", "winnow_array"]
