"""Batch-first, numpy-vectorized fingerprinting engine.

The scalar pipeline (normalize -> geohash -> k-gram hash -> winnow,
paper Sections III-IV) runs pure-Python loops per point; bulk ingest and
index rebuilds fingerprint thousands of trajectories, so this module
evaluates the same pipeline columnar-style over one concatenated point
array:

1. every point of the batch is geohash-encoded in one vector pass
   (:func:`repro.geo.batch.encode_batch`);
2. consecutive duplicate cells are removed with one boolean mask,
   re-pinning each trajectory's first point so runs never merge across
   trajectory boundaries;
3. k-gram suffix hashes and covering prefixes are computed for *all*
   window positions of the concatenated cell stream in ``k`` vector
   passes (:mod:`repro.hashing.batch`); windows straddling a trajectory
   boundary are simply never read back, because each trajectory's gram
   span is sliced out by offset;
4. winnowing selects rightmost window minima per trajectory via stride
   tricks (:func:`winnow_array`).

The output is *bit-identical* to the scalar
:class:`~repro.core.fingerprint.Fingerprinter` — same
:class:`~repro.core.winnowing.Selection` streams, same bitmaps — which
the property tests assert across randomized trajectories, both suffix
hash families, and the empty/short edge cases.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..core.config import GeodabConfig
from ..core.fingerprint import FingerprintSet
from ..core.geodab import GeodabScheme
from ..core.winnowing import Selection
from ..geo.batch import bit_length_u64, encode_batch
from ..geo.point import Trajectory
from ..hashing.batch import (
    chain_kgram_hashes,
    mix64_batch,
    polynomial_kgram_hashes,
    sliding_rightmost_minima,
)
from ..hashing.stable import splitmix64
from ..normalize.batch import PointBatch

__all__ = ["BatchFingerprinter", "winnow_array"]

_U = np.uint64


def winnow_array(hashes: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.core.winnowing.winnow`.

    Returns ``(values, positions)`` of the winnowed selections, with the
    same consecutive-duplicate collapsing and the same short-stream
    boundary behaviour (a sequence shorter than the window yields its
    rightmost minimum).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(hashes)
    if n == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    if n < window:
        # Rightmost minimum of the whole (short) stream: scan reversed so
        # ties resolve to the highest index, as the scalar loop's ``<=``
        # comparison does.
        index = n - 1 - int(np.argmin(hashes[::-1]))
        return hashes[index : index + 1], np.array([index], dtype=np.int64)
    minima, positions = sliding_rightmost_minima(hashes, window)
    keep = np.empty(len(positions), dtype=bool)
    keep[0] = True
    np.not_equal(positions[1:], positions[:-1], out=keep[1:])
    return minima[keep], positions[keep]


class BatchFingerprinter:
    """Array-based ``W(S)`` over whole batches of trajectories.

    Mirrors the :class:`~repro.core.fingerprint.Fingerprinter` facade
    (same constructor, same configuration handling) but evaluates the
    pipeline columnar-style; :meth:`fingerprint_many` is the fast path
    that ``Fingerprinter.fingerprint_many`` delegates to.
    """

    __slots__ = ("scheme", "_wide")

    def __init__(self, config: GeodabConfig | GeodabScheme | None = None) -> None:
        if isinstance(config, GeodabScheme):
            self.scheme = config
        else:
            self.scheme = GeodabScheme(config)
        self._wide = not self.scheme.config.fits_in_32_bits

    @property
    def config(self) -> GeodabConfig:
        """The pipeline configuration."""
        return self.scheme.config

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _deduped_cells(
        self, batch: PointBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode and de-duplicate the whole batch in one pass.

        Returns the concatenated deep encodings and cell ids with
        consecutive duplicate cells removed per trajectory, plus the
        per-trajectory start offsets into the filtered arrays (length
        ``len(batch) + 1``; trajectory ``i`` owns the half-open slice
        ``starts[i]:starts[i+1]``).
        """
        config = self.scheme.config
        counts = batch.lengths()
        total = batch.num_points
        bounds = batch.bounds
        if total == 0:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty, bounds
        deep = encode_batch(batch.lats, batch.lons, config.cover_depth)
        cell_shift = config.cover_depth - min(
            config.cover_depth, config.normalization_depth
        )
        cells = deep >> _U(cell_shift)
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        np.not_equal(cells[1:], cells[:-1], out=keep[1:])
        # A trajectory's first point always survives, so equal-cell runs
        # never merge across the boundary with the previous trajectory.
        keep[bounds[:-1][counts > 0]] = True
        kept_before = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_before[1:])
        return deep[keep], cells[keep], kept_before[bounds]

    def _kgram_geodabs(self, deep: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Geodab of every k-gram position of the concatenated stream.

        Positions whose window straddles a trajectory boundary are
        computed like any other (vector lanes are cheaper than masking)
        and discarded by the caller's per-trajectory slicing.
        """
        config = self.scheme.config
        k = config.k
        grams = len(cells) - k + 1
        if grams <= 0:
            return np.empty(0, dtype=np.uint64)
        # Covering prefix: longest common bit prefix of the window's deep
        # encodings, aligned to prefix_bits (truncate deeper covers,
        # zero-extend shallower ones) exactly like prefix_from_deep.
        first = deep[:grams]
        diff = np.zeros(grams, dtype=np.uint64)
        for offset in range(1, k):
            diff |= first ^ deep[offset : offset + grams]
        cover_depth = _U(config.cover_depth)
        prefix_bits = _U(config.prefix_bits)
        common = np.minimum(cover_depth - bit_length_u64(diff), prefix_bits)
        prefix = (first >> (cover_depth - common)) << (prefix_bits - common)
        # Order-sensitive suffix over the window's cells.
        if config.suffix_hash == "polynomial":
            raw = polynomial_kgram_hashes(cells, k)
            suffix = mix64_batch(raw ^ _U(splitmix64(config.hash_seed)))
        else:
            suffix = chain_kgram_hashes(cells, k, config.hash_seed)
        suffix &= _U((1 << config.suffix_bits) - 1)
        return (prefix << _U(config.suffix_bits)) | suffix

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def kgram_geodabs(self, points: Trajectory) -> list[int]:
        """Vectorized ``TrajectoryWinnower.kgram_geodabs`` (candidate
        stream ``C`` of Algorithm 1, in order)."""
        deep, cells, bounds = self._deduped_cells(
            PointBatch.from_trajectories([list(points)])
        )
        if bounds[1] < self.scheme.config.k:
            return []
        return [int(g) for g in self._kgram_geodabs(deep, cells)]

    def fingerprint(self, points: Trajectory) -> FingerprintSet:
        """Compute ``W(S)`` for one (normalized) trajectory."""
        return self.fingerprint_many([points])[0]

    def _make_set(
        self, selections: list[Selection], values: np.ndarray
    ) -> FingerprintSet:
        """Assemble a fingerprint set from winnowed numpy values."""
        if self._wide:
            bitmap: Roaring64Map | RoaringBitmap = Roaring64Map.from_numpy(values)
        else:
            bitmap = RoaringBitmap.from_numpy(values)
        return FingerprintSet(tuple(selections), bitmap)

    def fingerprint_many(
        self, trajectories: Iterable[Trajectory]
    ) -> list[FingerprintSet]:
        """Fingerprint a batch of (normalized) trajectories.

        Concatenates the batch into a :class:`PointBatch` and runs
        :meth:`fingerprint_batch` — the columnar fast path shared with
        the vectorized normalizers.
        """
        return self.fingerprint_batch(
            PointBatch.from_trajectories(
                [t if isinstance(t, list) else list(t) for t in trajectories]
            )
        )

    def fingerprint_batch(self, batch: PointBatch) -> list[FingerprintSet]:
        """Fingerprint an already-columnar batch of trajectories.

        One vectorized sweep computes every k-gram geodab of the batch;
        a second global sweep winnows every full window of the
        concatenated gram stream, and per-trajectory results are sliced
        out by offset (windows straddling a trajectory boundary are
        masked away, never read).  This is the zero-conversion entry
        point: batch normalizers hand their output arrays here without
        ever materializing intermediate ``Point`` objects.
        """
        deep, cells, bounds = self._deduped_cells(batch)
        geodabs = self._kgram_geodabs(deep, cells)
        config = self.scheme.config
        k = config.k
        window = config.window
        lens = np.diff(bounds)
        grams = np.maximum(lens - (k - 1), 0)
        out: list[FingerprintSet | None] = [None] * len(batch)

        # Trajectories with at least one full winnow window share one
        # global rightmost-minima pass.  Their window-start spans are
        # disjoint (consecutive gram streams are k-1 positions apart), so
        # a mask built from span boundaries separates them again.
        long = grams >= window
        if long.any():
            minima, positions = sliding_rightmost_minima(geodabs, window)
            keep = np.empty(len(positions), dtype=bool)
            keep[0] = True
            np.not_equal(positions[1:], positions[:-1], out=keep[1:])
            span_starts = bounds[:-1][long]
            span_ends = span_starts + (grams[long] - window + 1)
            # The consecutive-duplicate collapse resets per trajectory.
            keep[span_starts] = True
            marks = np.zeros(len(positions) + 1, dtype=np.int32)
            np.add.at(marks, span_starts, 1)
            np.subtract.at(marks, span_ends, 1)
            keep &= np.cumsum(marks[:-1]) > 0
            selected = np.flatnonzero(keep)
            values = minima[selected]
            absolute = positions[selected]
            lows = np.searchsorted(selected, span_starts)
            highs = np.searchsorted(selected, span_ends)
            for index, low, high, base in zip(
                np.flatnonzero(long), lows, highs, span_starts
            ):
                chunk = values[low:high]
                out[index] = self._make_set(
                    [
                        Selection(int(value), int(position - base))
                        for value, position in zip(chunk, absolute[low:high])
                    ],
                    chunk,
                )

        # Gram streams shorter than the window contribute their single
        # rightmost minimum (the whole stream is the only window).
        for index in np.flatnonzero((grams > 0) & ~long):
            start = bounds[index]
            chunk = geodabs[start : start + grams[index]]
            at = len(chunk) - 1 - int(np.argmin(chunk[::-1]))
            out[index] = self._make_set(
                [Selection(int(chunk[at]), at)], chunk[at : at + 1]
            )

        # Fresh empty sets per trajectory: bitmaps are mutable objects
        # and must not be shared between documents.
        return [
            fps if fps is not None
            else FingerprintSet.from_selections([], wide=self._wide)
            for fps in out
        ]
