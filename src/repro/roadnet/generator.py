"""Synthetic city road-network generator.

Stands in for the OpenStreetMap London extract of Section VI-A1: a
perturbed grid with a hierarchy of road classes over a configurable area.
The paper's dataset covers "a dense area of 300 square kilometres located
around the center of London"; :func:`london_network` reproduces those
dimensions.

The generator produces networks with the properties the evaluation
actually depends on: (i) trajectories constrained to shared streets, so
distinct routes overlap partially, and (ii) realistic edge lengths
relative to the 36-bit normalization cells (~100 m).
"""

from __future__ import annotations

import math
from random import Random

from ..geo.bbox import square_around
from ..geo.point import Point, destination
from .graph import RoadClass, RoadNetwork

__all__ = ["LONDON_CENTER", "generate_city_network", "london_network"]

#: Center of the paper's evaluation area.
LONDON_CENTER = Point(51.5074, -0.1278)


def generate_city_network(
    center: Point = LONDON_CENTER,
    half_side_m: float = 8_660.0,
    spacing_m: float = 250.0,
    seed: int = 0,
    jitter_fraction: float = 0.22,
    removal_probability: float = 0.08,
    major_every: int = 5,
) -> RoadNetwork:
    """Generate a perturbed-grid city road network.

    Parameters
    ----------
    center:
        Geographic center of the city.
    half_side_m:
        Half the side of the square covered; the default yields the
        paper's ~300 km^2 (17.3 km x 17.3 km).
    spacing_m:
        Target distance between adjacent intersections.
    seed:
        Seed of the deterministic layout.
    jitter_fraction:
        Intersections are displaced by up to this fraction of the spacing
        in each axis, breaking the perfect grid.
    removal_probability:
        Fraction of street segments deleted to create irregular blocks;
        the result is restricted to its largest connected component.
    major_every:
        Every ``major_every``-th row/column is a primary road (faster),
        creating the arterials real route planners gravitate to.
    """
    if half_side_m <= 0 or spacing_m <= 0:
        raise ValueError("half_side_m and spacing_m must be positive")
    if not 0 <= removal_probability < 0.5:
        raise ValueError("removal_probability must be in [0, 0.5)")
    rng = Random(seed)
    per_side = max(2, int(round(2 * half_side_m / spacing_m)) + 1)
    network = RoadNetwork()

    # Lay out jittered intersections on a grid anchored at the SW corner.
    southwest = destination(
        destination(center, 180.0, half_side_m), 270.0, half_side_m
    )
    for row in range(per_side):
        anchor = destination(southwest, 0.0, row * spacing_m)
        for col in range(per_side):
            base = destination(anchor, 90.0, col * spacing_m)
            d_east = (rng.random() * 2.0 - 1.0) * jitter_fraction * spacing_m
            d_north = (rng.random() * 2.0 - 1.0) * jitter_fraction * spacing_m
            jittered = destination(destination(base, 0.0, d_north), 90.0, d_east)
            network.add_node((row, col), jittered)

    def road_class_for(row: int, col: int, horizontal: bool) -> str:
        line = row if horizontal else col
        if line % major_every == 0:
            return RoadClass.PRIMARY
        return RoadClass.RESIDENTIAL

    for row in range(per_side):
        for col in range(per_side):
            if col + 1 < per_side and rng.random() >= removal_probability:
                network.add_edge(
                    (row, col),
                    (row, col + 1),
                    road_class=road_class_for(row, col, horizontal=True),
                )
            if row + 1 < per_side and rng.random() >= removal_probability:
                network.add_edge(
                    (row, col),
                    (row + 1, col),
                    road_class=road_class_for(row, col, horizontal=False),
                )
    return network.largest_component()


def london_network(seed: int = 0, spacing_m: float = 250.0) -> RoadNetwork:
    """The default evaluation network: ~300 km^2 around central London."""
    return generate_city_network(
        center=LONDON_CENTER,
        half_side_m=8_660.0,
        spacing_m=spacing_m,
        seed=seed,
    )
