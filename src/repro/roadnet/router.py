"""Routing over road networks: Dijkstra shortest paths and route objects.

Replaces the GraphHopper routing library the paper uses to build its 5000
London routes (Section VI-A1).  Routes carry the polyline and the travel
duration, from which the trajectory sampler derives the moving speed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from random import Random
from typing import Callable, Hashable

from ..geo.point import Point, path_length
from .graph import RoadEdge, RoadNetwork

__all__ = ["Route", "shortest_path", "bounded_dijkstra", "random_routes"]


@dataclass(frozen=True, slots=True)
class Route:
    """A routed path through the network."""

    nodes: tuple[Hashable, ...]
    points: tuple[Point, ...]
    length_m: float
    duration_s: float

    @property
    def mean_speed_mps(self) -> float:
        """Average speed implied by length and duration."""
        if self.duration_s <= 0:
            return 0.0
        return self.length_m / self.duration_s

    def reversed(self) -> "Route":
        """The same route traversed in the opposite direction.

        Duration is preserved — the synthetic dataset gives both directions
        the same speed profile.
        """
        return Route(
            tuple(reversed(self.nodes)),
            tuple(reversed(self.points)),
            self.length_m,
            self.duration_s,
        )


def _edge_time(edge: RoadEdge) -> float:
    return edge.travel_time_s


def _edge_length(edge: RoadEdge) -> float:
    return edge.length_m


def _weight_function(weight: str) -> Callable[[RoadEdge], float]:
    if weight == "time":
        return _edge_time
    if weight == "length":
        return _edge_length
    raise ValueError(f"unknown weight {weight!r}; use 'time' or 'length'")


def shortest_path(
    network: RoadNetwork,
    source: Hashable,
    target: Hashable,
    weight: str = "time",
) -> Route | None:
    """Dijkstra shortest path; ``None`` when the target is unreachable.

    ``weight`` selects fastest (``"time"``) or shortest (``"length"``)
    routing.  The returned route's duration always reflects travel time
    and its length always reflects ground meters, regardless of the
    optimization criterion.
    """
    if source not in network or target not in network:
        raise KeyError("source and target must exist in the network")
    weigh = _weight_function(weight)
    best: dict[Hashable, float] = {source: 0.0}
    parents: dict[Hashable, RoadEdge] = {}
    heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 1
    visited: set[Hashable] = set()
    while heap:
        cost, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        if node == target:
            break
        visited.add(node)
        for edge in network.edges_from(node):
            if edge.target in visited:
                continue
            candidate = cost + weigh(edge)
            if candidate < best.get(edge.target, float("inf")):
                best[edge.target] = candidate
                parents[edge.target] = edge
                heapq.heappush(heap, (candidate, counter, edge.target))
                counter += 1
    if target not in best:
        return None
    nodes: list[Hashable] = [target]
    length = 0.0
    duration = 0.0
    node = target
    while node != source:
        edge = parents[node]
        length += edge.length_m
        duration += edge.travel_time_s
        node = edge.source
        nodes.append(node)
    nodes.reverse()
    points = tuple(network.point_of(n) for n in nodes)
    return Route(tuple(nodes), points, length, duration)


def bounded_dijkstra(
    network: RoadNetwork,
    source: Hashable,
    max_cost: float,
    weight: str = "length",
) -> dict[Hashable, float]:
    """All nodes reachable within ``max_cost``, with their costs.

    The HMM map matcher uses this with ``weight="length"`` to compute
    route distances between candidate nodes without exploring the whole
    network.
    """
    if source not in network:
        raise KeyError(f"unknown node {source!r}")
    weigh = _weight_function(weight)
    best: dict[Hashable, float] = {source: 0.0}
    heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 1
    done: dict[Hashable, float] = {}
    while heap:
        cost, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done[node] = cost
        for edge in network.edges_from(node):
            candidate = cost + weigh(edge)
            if candidate <= max_cost and candidate < best.get(
                edge.target, float("inf")
            ):
                best[edge.target] = candidate
                heapq.heappush(heap, (candidate, counter, edge.target))
                counter += 1
    return done


def random_routes(
    network: RoadNetwork,
    count: int,
    rng: Random,
    min_length_m: float = 2_000.0,
    max_attempts_per_route: int = 50,
    weight: str = "time",
) -> list[Route]:
    """Sample distinct random routes of at least ``min_length_m``.

    Mirrors the paper's dataset construction: unique routes between random
    locations, constrained to the road network.  Raises ``RuntimeError``
    when the network cannot supply enough long routes.
    """
    if count <= 0:
        return []
    node_ids = list(network.nodes())
    if len(node_ids) < 2:
        raise ValueError("network too small for routing")
    routes: list[Route] = []
    seen_endpoints: set[tuple[Hashable, Hashable]] = set()
    attempts_left = count * max_attempts_per_route
    while len(routes) < count and attempts_left > 0:
        attempts_left -= 1
        source, target = rng.sample(node_ids, 2)
        if (source, target) in seen_endpoints:
            continue
        seen_endpoints.add((source, target))
        route = shortest_path(network, source, target, weight=weight)
        if route is not None and route.length_m >= min_length_m:
            routes.append(route)
    if len(routes) < count:
        raise RuntimeError(
            f"could only sample {len(routes)}/{count} routes of "
            f">= {min_length_m} m; grow the network or relax the minimum"
        )
    return routes
