"""Synthetic global activity model (OpenStreetMap-dump substitute).

Section VI-E distributes a *global* index: trajectories recorded across
the world, assumed to follow the worldwide road network's density.  The
paper's Figure 15 plots trajectories per 16-bit geohash cell (sharp peaks
at megacities — the highest is around Mexico City — and voids over
oceans); Figure 16 shows how shard count affects the balance of a 10-node
cluster.

We cannot ship the 60+ GB OSM dump, so this module synthesizes the only
property those experiments consume: a heavily *skewed, spatially
clustered* distribution of trajectory counts over geohash cells.  Cities
with Zipf-distributed populations are scattered over plausible inhabited
latitudes; each spreads its trajectories over nearby cells with a
Gaussian kernel.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from random import Random

from ..geo.geohash import encode
from ..geo.point import Point, destination

__all__ = ["City", "WorldActivityModel"]


@dataclass(frozen=True, slots=True)
class City:
    """A population center of the synthetic world."""

    center: Point
    weight: float
    spread_m: float


class WorldActivityModel:
    """Synthetic distribution of trajectory activity over the globe.

    Parameters
    ----------
    num_cities:
        Number of population centers.
    zipf_exponent:
        City weights follow ``rank^(-zipf_exponent)``; ~1.0 matches the
        classic city-size law and produces Figure 15's sharp peaks.
    seed:
        Determinism seed.
    """

    #: Inhabited latitude band (approximate, excludes polar voids).
    MIN_LAT = -55.0
    MAX_LAT = 68.0

    def __init__(
        self,
        num_cities: int = 1200,
        zipf_exponent: float = 1.05,
        seed: int = 0,
    ) -> None:
        if num_cities < 1:
            raise ValueError("num_cities must be positive")
        self._rng = Random(seed)
        self.cities = self._make_cities(num_cities, zipf_exponent)

    def _make_cities(self, count: int, exponent: float) -> list[City]:
        rng = self._rng
        cities: list[City] = []
        # A handful of "continent" anchors cluster cities together, which
        # produces contiguous busy stretches on the z-order curve (land
        # masses) separated by voids (oceans).
        anchors = [
            (
                rng.uniform(self.MIN_LAT * 0.8, self.MAX_LAT * 0.8),
                rng.uniform(-180.0, 180.0),
            )
            for _ in range(7)
        ]
        total_weight = sum(1.0 / (rank**exponent) for rank in range(1, count + 1))
        for rank in range(1, count + 1):
            anchor_lat, anchor_lon = rng.choice(anchors)
            lat = min(
                self.MAX_LAT,
                max(self.MIN_LAT, rng.gauss(anchor_lat, 12.0)),
            )
            lon = (rng.gauss(anchor_lon, 25.0) + 540.0) % 360.0 - 180.0
            weight = (1.0 / (rank**exponent)) / total_weight
            # Footprint grows with population (metro areas sprawl), so the
            # largest cities spill over several 16-bit cells while the tail
            # stays point-like — matching Figure 15's sharp-but-wide peaks.
            spread = rng.uniform(25_000.0, 60_000.0) + 300_000.0 * math.sqrt(weight)
            cities.append(City(Point(lat, lon), weight, spread))
        return cities

    def sample_locations(self, count: int) -> list[Point]:
        """Sample trajectory locations following the activity distribution."""
        rng = self._rng
        weights = [c.weight for c in self.cities]
        out: list[Point] = []
        for city in rng.choices(self.cities, weights=weights, k=count):
            bearing = rng.uniform(0.0, 360.0)
            distance = abs(rng.gauss(0.0, city.spread_m))
            out.append(destination(city.center, bearing, distance))
        return out

    def trajectories_per_cell(
        self, total_trajectories: int, prefix_depth: int = 16
    ) -> dict[int, int]:
        """Expected trajectory counts per geohash cell at ``prefix_depth``.

        Computed analytically per city (no per-trajectory sampling): each
        city's trajectory budget is spread over a disc of cells with a
        Gaussian radial kernel.  Returns only non-empty cells — the voids
        of Figure 15 are the missing keys.
        """
        if total_trajectories < 1:
            raise ValueError("total_trajectories must be positive")
        counts: Counter[int] = Counter()
        rng = Random(self._rng.random())
        for city in self.cities:
            budget = city.weight * total_trajectories
            if budget < 1.0:
                continue
            # Spread the budget over sampled offsets; sample counts scale
            # with the budget so big cities get a smooth kernel while the
            # rural tail stays cheap.
            samples = max(32, min(2048, int(budget / 32)))
            per_sample = budget / samples
            for _ in range(samples):
                bearing = rng.uniform(0.0, 360.0)
                distance = abs(rng.gauss(0.0, city.spread_m))
                location = destination(city.center, bearing, distance)
                cell = encode(location, prefix_depth)
                counts[cell] += per_sample
        return {
            cell: max(1, int(round(count)))
            for cell, count in counts.items()
            if count >= 0.5
        }

    def skew_statistics(self, counts: dict[int, int]) -> dict[str, float]:
        """Summary statistics of a per-cell distribution (diagnostics)."""
        if not counts:
            return {"cells": 0, "total": 0, "max": 0, "mean": 0.0, "gini": 0.0}
        values = sorted(counts.values())
        total = sum(values)
        n = len(values)
        cumulative = 0.0
        weighted = 0.0
        for i, v in enumerate(values, start=1):
            cumulative += v
            weighted += i * v
        gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
        return {
            "cells": float(n),
            "total": float(total),
            "max": float(values[-1]),
            "mean": total / n,
            "gini": gini,
        }
