"""Road networks, routing, and the synthetic world activity model."""

from .generator import LONDON_CENTER, generate_city_network, london_network
from .graph import NodeLocator, RoadClass, RoadEdge, RoadNetwork
from .router import Route, bounded_dijkstra, random_routes, shortest_path
from .world import City, WorldActivityModel

__all__ = [
    "City",
    "LONDON_CENTER",
    "NodeLocator",
    "RoadClass",
    "RoadEdge",
    "RoadNetwork",
    "Route",
    "WorldActivityModel",
    "bounded_dijkstra",
    "generate_city_network",
    "london_network",
    "random_routes",
    "shortest_path",
]
