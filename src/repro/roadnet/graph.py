"""Road-network graph model.

A minimal routable road network: nodes are positioned on the sphere and
directed edges carry ground length, speed and road class.  This is the
substrate standing in for the GraphHopper/OpenStreetMap stack the paper
uses to generate its routes (Section VI-A1); see DESIGN.md for the
substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..geo.bbox import BBox, bbox_of
from ..geo.geohash import Geohash, encode
from ..geo.point import Point, haversine

__all__ = ["RoadClass", "RoadEdge", "RoadNetwork", "NodeLocator"]


class RoadClass:
    """Road classes with default free-flow speeds (m/s)."""

    MOTORWAY = "motorway"
    PRIMARY = "primary"
    RESIDENTIAL = "residential"

    #: Default speeds: 100 km/h, 50 km/h, 30 km/h.
    DEFAULT_SPEEDS = {
        MOTORWAY: 27.8,
        PRIMARY: 13.9,
        RESIDENTIAL: 8.3,
    }


@dataclass(frozen=True, slots=True)
class RoadEdge:
    """A directed edge of the road network."""

    source: Hashable
    target: Hashable
    length_m: float
    speed_mps: float
    road_class: str

    @property
    def travel_time_s(self) -> float:
        """Free-flow traversal time in seconds."""
        return self.length_m / self.speed_mps


class RoadNetwork:
    """A directed road graph with spherical node positions.

    Edges added with ``bidirectional=True`` (the default, matching
    two-way streets) create both directions.
    """

    def __init__(self) -> None:
        self._points: dict[Hashable, Point] = {}
        self._adjacency: dict[Hashable, list[RoadEdge]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: Hashable, point: Point) -> None:
        """Add (or reposition) a node."""
        self._points[node_id] = point
        self._adjacency.setdefault(node_id, [])

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        speed_mps: float | None = None,
        road_class: str = RoadClass.RESIDENTIAL,
        bidirectional: bool = True,
    ) -> None:
        """Connect two existing nodes; length derives from their positions."""
        if source not in self._points or target not in self._points:
            raise KeyError("both endpoints must be added before the edge")
        if source == target:
            raise ValueError("self-loops are not allowed")
        if speed_mps is None:
            speed_mps = RoadClass.DEFAULT_SPEEDS[road_class]
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        length = haversine(self._points[source], self._points[target])
        self._adjacency[source].append(
            RoadEdge(source, target, length, speed_mps, road_class)
        )
        if bidirectional:
            self._adjacency[target].append(
                RoadEdge(target, source, length, speed_mps, road_class)
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._points)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(edges) for edges in self._adjacency.values())

    def nodes(self) -> Iterator[Hashable]:
        """Iterate node identifiers."""
        return iter(self._points)

    def point_of(self, node_id: Hashable) -> Point:
        """Position of a node."""
        return self._points[node_id]

    def edges_from(self, node_id: Hashable) -> list[RoadEdge]:
        """Outgoing edges of a node."""
        return self._adjacency[node_id]

    def edges(self) -> Iterator[RoadEdge]:
        """Iterate all directed edges."""
        for edges in self._adjacency.values():
            yield from edges

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._points

    def bbox(self) -> BBox:
        """Bounding box of all nodes."""
        return bbox_of(list(self._points.values()))

    # ------------------------------------------------------------------
    # Topology utilities
    # ------------------------------------------------------------------

    def connected_components(self) -> list[set[Hashable]]:
        """Weakly connected components (BFS over undirected view)."""
        undirected: dict[Hashable, set[Hashable]] = {
            node: set() for node in self._points
        }
        for edges in self._adjacency.values():
            for edge in edges:
                undirected[edge.source].add(edge.target)
                undirected[edge.target].add(edge.source)
        seen: set[Hashable] = set()
        components: list[set[Hashable]] = []
        for start in self._points:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in undirected[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def subgraph(self, keep: set[Hashable]) -> "RoadNetwork":
        """Copy of the network restricted to the given nodes."""
        out = RoadNetwork()
        for node_id in keep:
            out.add_node(node_id, self._points[node_id])
        for edges in self._adjacency.values():
            for edge in edges:
                if edge.source in keep and edge.target in keep:
                    out._adjacency[edge.source].append(edge)
        return out

    def largest_component(self) -> "RoadNetwork":
        """Restriction to the largest weakly connected component."""
        components = self.connected_components()
        if not components:
            return RoadNetwork()
        return self.subgraph(components[0])


class NodeLocator:
    """Radius queries over network nodes via geohash buckets.

    Buckets nodes by geohash cell at ``depth``; a radius query scans the
    rings of cells needed to cover the radius around the probe point.
    This is the candidate-retrieval step of HMM map matching (Section V-B:
    "retrieve a set of matching nodes on a road network within a certain
    radius").
    """

    def __init__(self, network: RoadNetwork, depth: int = 32) -> None:
        if depth < 2 or depth % 2 != 0:
            raise ValueError("depth must be an even integer >= 2")
        self.network = network
        self.depth = depth
        self._buckets: dict[int, list[Hashable]] = {}
        for node_id in network.nodes():
            cell = encode(network.point_of(node_id), depth)
            self._buckets.setdefault(cell, []).append(node_id)

    def nearby(self, point: Point, radius_m: float) -> list[tuple[Hashable, float]]:
        """Nodes within ``radius_m`` of ``point`` as ``(node_id, distance)``.

        Sorted by increasing distance.
        """
        if radius_m <= 0:
            raise ValueError("radius_m must be positive")
        probe = Geohash.of(point, self.depth)
        box = probe.bbox()
        cell_min = min(box.width_m, box.height_m)
        rings = max(1, int(radius_m / cell_min) + 1)
        lat_step = box.north - box.south
        lon_step = box.east - box.west
        center = box.center
        out: list[tuple[Hashable, float]] = []
        seen_cells: set[int] = set()
        for dy in range(-rings, rings + 1):
            lat = center.lat + dy * lat_step
            if not -90.0 <= lat <= 90.0:
                continue
            for dx in range(-rings, rings + 1):
                lon = (center.lon + dx * lon_step + 540.0) % 360.0 - 180.0
                cell = encode(Point(lat, lon), self.depth)
                if cell in seen_cells:
                    continue
                seen_cells.add(cell)
                for node_id in self._buckets.get(cell, ()):
                    distance = haversine(point, self.network.point_of(node_id))
                    if distance <= radius_m:
                        out.append((node_id, distance))
        out.sort(key=lambda item: item[1])
        return out

    def nearest(self, point: Point, search_radius_m: float = 500.0) -> Hashable | None:
        """Closest node within ``search_radius_m``, or ``None``.

        Doubles the radius until a hit or until the radius exceeds 64x the
        initial value.
        """
        radius = search_radius_m
        for _ in range(7):
            hits = self.nearby(point, radius)
            if hits:
                return hits[0][0]
            radius *= 2.0
        return None
