"""Vectorized counterparts of the scalar hashing primitives.

The fingerprinting hot path evaluates three kernels per trajectory: an
order-sensitive hash of every k-gram of cells, the covering-prefix fold,
and the sliding-window minimum selection of winnowing.  This module
re-expresses the hash and minima kernels over numpy arrays so a batch of
trajectories is processed with ``k`` (respectively ``w``) vector passes
instead of a Python loop per element.

Everything here is *bit-identical* to the scalar implementations in
:mod:`repro.hashing.rolling` and :mod:`repro.hashing.stable` — ``uint64``
arithmetic wraps mod 2^64 exactly like the explicitly-masked Python
integers — which the property tests assert across randomized inputs.
"""

from __future__ import annotations

import numpy as np

from .rolling import DEFAULT_BASE
from .stable import splitmix64

__all__ = [
    "chain_kgram_hashes",
    "mix64_batch",
    "polynomial_kgram_hashes",
    "sliding_rightmost_minima",
    "splitmix64_batch",
]

_U = np.uint64


def splitmix64_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.hashing.stable.splitmix64`."""
    with np.errstate(over="ignore"):
        x = x + _U(0x9E3779B97F4A7C15)
        x = (x ^ (x >> _U(30))) * _U(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> _U(27))) * _U(0x94D049BB133111EB)
        return x ^ (x >> _U(31))


def mix64_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.hashing.stable.mix64`."""
    with np.errstate(over="ignore"):
        x = x ^ (x >> _U(33))
        x = x * _U(0xFF51AFD7ED558CCD)
        x = x ^ (x >> _U(33))
        x = x * _U(0xC4CEB9FE1A85EC53)
        return x ^ (x >> _U(33))


def polynomial_kgram_hashes(
    values: np.ndarray, window: int, base: int = DEFAULT_BASE
) -> np.ndarray:
    """Polynomial hash of every length-``window`` k-gram of ``values``.

    Horner evaluation, one fused vector pass per window position:
    ``window`` multiply-adds produce all ``len(values) - window + 1``
    hashes at once.  Bit-identical to
    :func:`repro.hashing.rolling.rolling_hashes` mod 2^64.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    values = values.astype(np.uint64, copy=False)
    grams = len(values) - window + 1
    if grams <= 0:
        return np.empty(0, dtype=np.uint64)
    hashes = np.zeros(grams, dtype=np.uint64)
    multiplier = _U(base & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        for offset in range(window):
            hashes = hashes * multiplier + values[offset : offset + grams]
    return hashes


def chain_kgram_hashes(
    values: np.ndarray, window: int, seed: int = 0
) -> np.ndarray:
    """Splitmix-chained hash of every length-``window`` k-gram.

    Bit-identical to :func:`repro.hashing.stable.hash_int_sequence_64`
    applied to each window.  The chain is inherently sequential in the
    window dimension, but every step vectorizes across all windows.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    values = values.astype(np.uint64, copy=False)
    grams = len(values) - window + 1
    if grams <= 0:
        return np.empty(0, dtype=np.uint64)
    hashes = np.full(
        grams, splitmix64(seed ^ 0x9E3779B97F4A7C15), dtype=np.uint64
    )
    for offset in range(window):
        hashes = splitmix64_batch(hashes ^ values[offset : offset + grams])
    return hashes


def sliding_rightmost_minima(
    values: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rightmost minimum ``(values, indices)`` of every full window.

    Vectorized :func:`repro.hashing.rolling.windowed_minima` built on
    stride tricks: a zero-copy ``sliding_window_view`` gives every window
    as a row, ``min`` reduces the rows, and the rightmost occurrence is
    recovered by arg-maxing the reversed equality mask (ties select the
    newest element, as winnowing requires).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(values)
    if n < window:
        return np.empty(0, dtype=values.dtype), np.empty(0, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(values, window)
    minima = windows.min(axis=1)
    # argmax of the reversed equality mask finds the *last* occurrence.
    offsets = (window - 1) - np.argmax(
        windows[:, ::-1] == minima[:, None], axis=1
    )
    indices = np.arange(n - window + 1, dtype=np.int64) + offsets
    return minima, indices
