"""Rolling hashes over sliding windows of integer sequences.

The winnowing paper (Schleimer et al., SIGMOD'03) recommends rolling
hashes so that the hash of k-gram ``i+1`` is derived from the hash of
k-gram ``i`` in O(1).  The geodabs paper notes that normalized trajectories
are short enough that the optimization is not strictly necessary
(Section IV-A), but we provide it anyway: it is used by the ablation
benchmarks and by the property tests that cross-validate the direct
sequence hash.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

_MASK_64 = 0xFFFFFFFFFFFFFFFF

#: Default multiplier: an odd constant with good spectral behaviour
#: (the golden-ratio multiplier used by Fibonacci hashing).
DEFAULT_BASE = 0x9E3779B97F4A7C15


class PolynomialRollingHash:
    """Order-sensitive polynomial hash over a fixed-size window.

    The hash of a window ``(v_0, ..., v_{k-1})`` is
    ``sum(v_i * base^(k-1-i)) mod 2^64``.  Pushing a new value and evicting
    the oldest one are both O(1) because ``base^(k-1)`` is precomputed.
    """

    def __init__(self, window: int, base: int = DEFAULT_BASE) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if base % 2 == 0:
            raise ValueError("base must be odd to be invertible mod 2^64")
        self._window = window
        self._base = base & _MASK_64
        self._top_power = pow(self._base, window - 1, 1 << 64)
        self._values: deque[int] = deque()
        self._hash = 0

    @property
    def window(self) -> int:
        """Configured window size."""
        return self._window

    @property
    def full(self) -> bool:
        """Whether the window has been filled."""
        return len(self._values) == self._window

    @property
    def value(self) -> int:
        """Current hash value (only meaningful when :attr:`full`)."""
        return self._hash

    def push(self, value: int) -> int | None:
        """Add a value, evicting the oldest if the window is full.

        Returns the window hash when the window is full, else ``None``.
        """
        value &= _MASK_64
        if len(self._values) == self._window:
            oldest = self._values.popleft()
            self._hash = (self._hash - oldest * self._top_power) & _MASK_64
        self._values.append(value)
        self._hash = (self._hash * self._base + value) & _MASK_64
        if len(self._values) == self._window:
            return self._hash
        return None

    def reset(self) -> None:
        """Clear the window."""
        self._values.clear()
        self._hash = 0


def rolling_hashes(
    values: Sequence[int], window: int, base: int = DEFAULT_BASE
) -> Iterator[int]:
    """Yield the polynomial hash of every length-``window`` k-gram in order.

    Produces ``len(values) - window + 1`` hashes; nothing for sequences
    shorter than the window.
    """
    roller = PolynomialRollingHash(window, base)
    for v in values:
        h = roller.push(v)
        if h is not None:
            yield h


def direct_window_hash(
    values: Sequence[int], base: int = DEFAULT_BASE
) -> int:
    """Non-incremental reference implementation of the window hash.

    Used by tests to validate :class:`PolynomialRollingHash`.
    """
    h = 0
    for v in values:
        h = (h * base + (v & _MASK_64)) & _MASK_64
    return h


class MinQueue:
    """Sliding-window minimum in amortized O(1) per operation.

    Implements the monotonic-deque trick.  Winnowing needs the *rightmost*
    minimum of each window, so ties evict the older element: the deque
    front is always the rightmost occurrence of the window minimum.
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = window
        # Entries are (value, index); values increase from front to back.
        self._deque: deque[tuple[int, int]] = deque()
        self._next_index = 0

    def push(self, value: int) -> None:
        """Append the next value of the stream."""
        index = self._next_index
        self._next_index += 1
        # Evict from the back everything >= value: they can never again be
        # a window minimum, and on ties the newer (rightmost) value wins.
        while self._deque and self._deque[-1][0] >= value:
            self._deque.pop()
        self._deque.append((value, index))
        # Drop the front if it slid out of the window.
        if self._deque[0][1] <= index - self._window:
            self._deque.popleft()

    @property
    def ready(self) -> bool:
        """Whether at least one full window has been observed."""
        return self._next_index >= self._window

    def minimum(self) -> tuple[int, int]:
        """Rightmost minimum of the current window as ``(value, index)``."""
        if not self._deque:
            raise ValueError("minimum of empty window")
        return self._deque[0]


def windowed_minima(values: Iterable[int], window: int) -> Iterator[tuple[int, int]]:
    """Yield the rightmost minimum ``(value, index)`` of every full window."""
    queue = MinQueue(window)
    for v in values:
        queue.push(v)
        if queue.ready:
            yield queue.minimum()
