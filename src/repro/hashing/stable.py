"""Deterministic scalar hash functions.

Fingerprints must be stable across processes and machines: the inverted
index is sharded by fingerprint value, so every node of the cluster has to
derive the same geodab from the same k-gram.  Python's built-in ``hash`` is
salted per process (``PYTHONHASHSEED``), so this module provides explicit,
well-known integer hash functions instead: FNV-1a, splitmix64, and the
murmur3/xxhash finalizers used as cheap avalanche mixers.
"""

from __future__ import annotations

from typing import Iterable

_MASK_32 = 0xFFFFFFFF
_MASK_64 = 0xFFFFFFFFFFFFFFFF

FNV32_OFFSET = 0x811C9DC5
FNV32_PRIME = 0x01000193
FNV64_OFFSET = 0xCBF29CE484222325
FNV64_PRIME = 0x00000100000001B3


def fnv1a_32(data: bytes, seed: int = FNV32_OFFSET) -> int:
    """32-bit FNV-1a hash of a byte string."""
    h = seed & _MASK_32
    for byte in data:
        h ^= byte
        h = (h * FNV32_PRIME) & _MASK_32
    return h


def fnv1a_64(data: bytes, seed: int = FNV64_OFFSET) -> int:
    """64-bit FNV-1a hash of a byte string."""
    h = seed & _MASK_64
    for byte in data:
        h ^= byte
        h = (h * FNV64_PRIME) & _MASK_64
    return h


def splitmix64(x: int) -> int:
    """Splitmix64 mixing step: a fast, high-quality 64-bit integer mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK_64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return x ^ (x >> 31)


def mix64(x: int) -> int:
    """xxhash/murmur-style 64-bit avalanche finalizer."""
    x &= _MASK_64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK_64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK_64
    return x ^ (x >> 33)


def mix32(x: int) -> int:
    """murmur3 32-bit avalanche finalizer."""
    x &= _MASK_32
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & _MASK_32
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & _MASK_32
    return x ^ (x >> 16)


def hash_int_sequence_64(values: Iterable[int], seed: int = 0) -> int:
    """Order-sensitive 64-bit hash of an integer sequence.

    This is the ``hash(points)`` building block of the geodab construction
    (paper Figure 3b): the hash must discriminate sequences "according to
    their path and their ordering", so each element is mixed into an
    accumulator that depends on everything seen so far.
    """
    h = splitmix64(seed ^ 0x9E3779B97F4A7C15)
    for v in values:
        h = splitmix64(h ^ (v & _MASK_64))
    return h


def hash_int_sequence_32(values: Iterable[int], seed: int = 0) -> int:
    """Order-sensitive 32-bit hash of an integer sequence."""
    return hash_int_sequence_64(values, seed) & _MASK_32


def hash_bytes(data: bytes, bits: int = 64, seed: int = 0) -> int:
    """Hash a byte string to a value of the requested width (<= 64 bits)."""
    if not 1 <= bits <= 64:
        raise ValueError(f"bits {bits} outside [1, 64]")
    h = fnv1a_64(data, FNV64_OFFSET ^ (splitmix64(seed) if seed else 0))
    return mix64(h) >> (64 - bits)


def truncate_hash(h: int, bits: int) -> int:
    """Keep the top ``bits`` of a 64-bit hash (better-mixed than the bottom)."""
    if not 1 <= bits <= 64:
        raise ValueError(f"bits {bits} outside [1, 64]")
    return (h & _MASK_64) >> (64 - bits)
