"""Deterministic hashing substrate: stable scalar hashes and rolling hashes."""

from .batch import (
    chain_kgram_hashes,
    mix64_batch,
    polynomial_kgram_hashes,
    sliding_rightmost_minima,
    splitmix64_batch,
)
from .rolling import (
    DEFAULT_BASE,
    MinQueue,
    PolynomialRollingHash,
    direct_window_hash,
    rolling_hashes,
    windowed_minima,
)
from .window import SlidingWindowAggregate, common_prefix_op
from .stable import (
    fnv1a_32,
    fnv1a_64,
    hash_bytes,
    hash_int_sequence_32,
    hash_int_sequence_64,
    mix32,
    mix64,
    splitmix64,
    truncate_hash,
)

__all__ = [
    "DEFAULT_BASE",
    "MinQueue",
    "PolynomialRollingHash",
    "SlidingWindowAggregate",
    "chain_kgram_hashes",
    "common_prefix_op",
    "direct_window_hash",
    "mix64_batch",
    "polynomial_kgram_hashes",
    "sliding_rightmost_minima",
    "splitmix64_batch",
    "fnv1a_32",
    "fnv1a_64",
    "hash_bytes",
    "hash_int_sequence_32",
    "hash_int_sequence_64",
    "mix32",
    "mix64",
    "rolling_hashes",
    "splitmix64",
    "truncate_hash",
    "windowed_minima",
]
