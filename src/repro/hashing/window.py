"""Sliding-window aggregation over an associative operation.

The optimized winnowing pipeline (paper Section IV-A sketches it before
dropping it for simplicity) needs, besides the rolling suffix hash, the
*covering geohash* of each k-gram — the longest common bit prefix of the
window's deep encodings.  Longest-common-prefix is associative, so the
classic two-stack trick evaluates it over a sliding window in amortized
O(1) per step for any semigroup.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["SlidingWindowAggregate", "common_prefix_op"]


class SlidingWindowAggregate(Generic[T]):
    """Amortized-O(1) aggregate of the last ``window`` pushed values.

    Implements the two-stack (front/back) folding technique: the back
    stack accumulates raw values, the front stack holds suffix-aggregates
    and is rebuilt (reversing the back stack) only when it empties.  The
    operation must be associative; no identity element is required.
    """

    __slots__ = ("_op", "_window", "_front", "_front_aggregates", "_back", "_back_aggregate")

    def __init__(self, window: int, op: Callable[[T, T], T]) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._op = op
        self._window = window
        self._front: list[T] = []
        self._front_aggregates: list[T] = []
        self._back: list[T] = []
        self._back_aggregate: T | None = None

    def __len__(self) -> int:
        return len(self._front) + len(self._back)

    @property
    def full(self) -> bool:
        """Whether the window holds ``window`` values."""
        return len(self) == self._window

    def push(self, value: T) -> T | None:
        """Push the next value; returns the window aggregate once full."""
        if len(self) == self._window:
            self._pop()
        self._back.append(value)
        if self._back_aggregate is None:
            self._back_aggregate = value
        else:
            self._back_aggregate = self._op(self._back_aggregate, value)
        if len(self) == self._window:
            return self.aggregate()
        return None

    def _pop(self) -> None:
        if not self._front:
            # Move the back stack over, building suffix aggregates.
            aggregate: T | None = None
            while self._back:
                value = self._back.pop()
                aggregate = value if aggregate is None else self._op(value, aggregate)
                self._front.append(value)
                self._front_aggregates.append(aggregate)
            self._back_aggregate = None
        self._front.pop()
        self._front_aggregates.pop()

    def aggregate(self) -> T:
        """Aggregate of the current window contents."""
        if not self._front and not self._back:
            raise ValueError("aggregate of empty window")
        if self._front and self._back:
            assert self._back_aggregate is not None
            return self._op(self._front_aggregates[-1], self._back_aggregate)
        if self._front:
            return self._front_aggregates[-1]
        assert self._back_aggregate is not None
        return self._back_aggregate


def common_prefix_op(width: int) -> Callable[[tuple[int, int], tuple[int, int]], tuple[int, int]]:
    """Associative LCP operation over ``(bits, depth)`` pairs.

    Values are bit strings of at most ``width`` bits represented as
    integers with an explicit depth; the operation returns their longest
    common prefix.  Feeding ``(encoding, width)`` leaves per point yields
    the covering geohash of the window.
    """

    def op(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
        bits_a, depth_a = a
        bits_b, depth_b = b
        depth = min(depth_a, depth_b)
        bits_a >>= depth_a - depth
        bits_b >>= depth_b - depth
        diff = bits_a ^ bits_b
        common = depth - diff.bit_length()
        return (bits_a >> (depth - common), common)

    return op
