"""Normalizing trajectories by HMM map matching (Section V-B).

Compares the two normalization families of the paper on the same noisy
recordings: the lightweight geohash grid (N1/N2) and Viterbi map matching
onto the road network (N3).  The measure of success is convergence — how
similar the fingerprints of two recordings of the same route become.

Run with:  python examples/map_matching.py
"""

from random import Random

from repro.bench.report import print_table
from repro.core import Fingerprinter, GeodabConfig
from repro.mapmatch import MapMatcher
from repro.normalize import (
    GridNormalizer,
    MapMatchNormalizer,
    MovingAverageSmoother,
    compose,
)
from repro.roadnet import generate_city_network, random_routes
from repro.workload import GaussianGpsNoise, sample_route_trajectory


def main() -> None:
    print("Building road network and sampling a route...")
    network = generate_city_network(half_side_m=2_500.0, spacing_m=250.0, seed=11)
    route = random_routes(network, 1, Random(3), min_length_m=3_000.0)[0]
    print(
        f"  route: {len(route.nodes)} nodes, {route.length_m:,.0f} m, "
        f"{route.duration_s:,.0f} s\n"
    )

    # Two independent noisy recordings of the same drive.
    recordings = [
        sample_route_trajectory(route, noise=GaussianGpsNoise(20.0, Random(s)))
        for s in (1, 2)
    ]

    normalizers = {
        "none": lambda pts: list(pts),
        "grid 36 bits": GridNormalizer(36),
        "smooth + grid": compose(MovingAverageSmoother(9), GridNormalizer(36)),
        "map matching": MapMatchNormalizer(MapMatcher(network, sigma_m=20.0)),
        "map match + grid": compose(
            MapMatchNormalizer(MapMatcher(network, sigma_m=20.0)),
            GridNormalizer(36),
        ),
    }

    fingerprinter = Fingerprinter(GeodabConfig())
    rows = []
    for name, normalize in normalizers.items():
        normalized = [normalize(r) for r in recordings]
        fingerprints = [fingerprinter.fingerprint(n) for n in normalized]
        similarity = fingerprints[0].jaccard(fingerprints[1])
        rows.append(
            [
                name,
                len(normalized[0]),
                len(fingerprints[0]),
                len(fingerprints[1]),
                similarity,
            ]
        )

    print_table(
        "Fingerprint convergence of two recordings of the same route",
        ["normalization", "points", "fp A", "fp B", "jaccard"],
        rows,
    )
    print(
        "Map matching snaps both recordings onto the same road polyline, so\n"
        "their fingerprints converge the furthest — at the cost of running\n"
        "Viterbi against the network (paid once, at indexing time)."
    )


if __name__ == "__main__":
    main()
