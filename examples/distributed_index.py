"""Sharding a geodab index across a simulated cluster.

Demonstrates the distribution story of Section VI-E: the geohash prefix
of every geodab places it on the z-order curve; curve ranges map to
shards (preserving locality, so queries touch few shards); shards map to
nodes round-robin (breaking locality, so load balances).  Also reproduces
the world-scale balance experiment at small scale.

Run with:  python examples/distributed_index.py
"""

from repro.bench.report import print_table
from repro.cluster import (
    ShardedGeodabIndex,
    ShardingConfig,
    balance_report,
    distribute_cell_counts,
)
from repro.core import GeodabConfig
from repro.normalize import standard_normalizer
from repro.roadnet import WorldActivityModel, generate_city_network
from repro.workload import WorkloadBuilder


def main() -> None:
    # --- A city workload on a 10-node cluster ---------------------------
    print("Building workload and sharded index (128 shards, 10 nodes)...")
    network = generate_city_network(half_side_m=3_000.0, spacing_m=250.0, seed=4)
    dataset = WorkloadBuilder(network, seed=5).build(
        num_routes=10, trajectories_per_direction=5, num_queries=6
    )
    cluster = ShardedGeodabIndex(
        GeodabConfig(),
        ShardingConfig(num_shards=128, num_nodes=10),
        normalizer=standard_normalizer(),
    )
    for record in dataset.records:
        cluster.add(record.trajectory_id, record.points)

    rows = []
    for query in dataset.queries:
        results, stats = cluster.query_with_stats(query.points)
        top = results[0].trajectory_id if results else "-"
        rows.append(
            [
                query.query_id,
                stats.query_terms,
                stats.shards_contacted,
                stats.nodes_contacted,
                stats.candidates,
                top,
            ]
        )
    print_table(
        "Query fan-out on the cluster",
        ["query", "terms", "shards", "nodes", "candidates", "top hit"],
        rows,
    )
    print(
        "City-scale queries are curve-local: they contact a handful of "
        "shards, not the whole cluster.\n"
    )

    # --- World-scale balance (Figures 15-16 at small scale) -------------
    print("Distributing a synthetic world-scale index...")
    world = WorldActivityModel(seed=7)
    cells = world.trajectories_per_cell(500_000)
    stats = world.skew_statistics(cells)
    print(
        f"  {int(stats['cells']):,} populated 16-bit cells, "
        f"peak {int(stats['max']):,} trajectories, gini {stats['gini']:.2f}"
    )

    rows = []
    for num_shards in (100, 10_000):
        _, per_node = distribute_cell_counts(
            cells, 16, ShardingConfig(num_shards=num_shards, num_nodes=10)
        )
        report = balance_report(per_node)
        rows.append(
            [
                num_shards,
                report.minimum,
                int(report.mean),
                report.maximum,
                report.coefficient_of_variation,
            ]
        )
    print_table(
        "Node balance: 100 vs 10,000 shards on 10 nodes (cf. Figure 16)",
        ["shards", "min/node", "mean/node", "max/node", "cv"],
        rows,
    )
    print(
        "More shards break busy regions apart before the modulo placement, "
        "so the cluster balances."
    )


if __name__ == "__main__":
    main()
