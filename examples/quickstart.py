"""Quickstart: index a handful of trajectories and query by similarity.

Run with:  python examples/quickstart.py
"""

from repro import GeodabConfig, GeodabIndex, Point
from repro.geo import destination
from repro.normalize import standard_normalizer


def make_trajectory(start: Point, bearing: float, steps: int, step_m: float = 15.0):
    """A simple synthetic GPS track walking in one direction."""
    points = [start]
    for _ in range(steps - 1):
        points.append(destination(points[-1], bearing, step_m))
    return points


def main() -> None:
    london = Point(51.5074, -0.1278)

    # 1. Configure the pipeline (paper defaults: 36-bit cells, k=6, t=12)
    #    and build an index that normalizes trajectories on the way in.
    config = GeodabConfig()
    index = GeodabIndex(config, normalizer=standard_normalizer())

    # 2. Index a few trajectories.
    eastbound = make_trajectory(london, bearing=90.0, steps=400)
    index.add("eastbound", eastbound)
    index.add("westbound", list(reversed(eastbound)))
    index.add("northbound", make_trajectory(london, bearing=0.0, steps=400))

    # 3. Query with a slightly perturbed recording of the eastbound trip.
    query = [destination(p, 45.0, 8.0) for p in eastbound]
    results = index.query(query, limit=5)

    print("Query: a noisy re-recording of the eastbound trajectory\n")
    for result in results:
        print(
            f"  {result.trajectory_id:<12} "
            f"jaccard={result.jaccard:.3f} distance={result.distance:.3f} "
            f"shared_terms={result.shared_terms}"
        )

    # The reversed trajectory shares the same streets but no fingerprints:
    # geodabs capture direction, so "westbound" is not even a candidate.
    retrieved = {r.trajectory_id for r in results}
    assert "eastbound" in retrieved
    assert "westbound" not in retrieved
    print("\nDirection discrimination confirmed: westbound was not retrieved.")


if __name__ == "__main__":
    main()
