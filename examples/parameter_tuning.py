"""Automated parameter discovery by hill climbing (paper §VI-A2, future work).

The paper tunes the normalization depth and the winnowing bounds by hand
and suggests a hill-climbing strategy as future work.  This example runs
that strategy on a small sample dataset: starting from a deliberately
poor configuration, the search walks the (depth, k, t) space towards the
paper's hand-tuned optimum, paying one index build per evaluated
configuration.

Run with:  python examples/parameter_tuning.py   (takes a minute or two)
"""

from repro.bench.report import print_table
from repro.core import GeodabConfig
from repro.roadnet import generate_city_network
from repro.tuning import hill_climb
from repro.workload import WorkloadBuilder


def main() -> None:
    print("Building a small tuning sample (10 routes x 8 recordings)...")
    network = generate_city_network(half_side_m=2_500.0, spacing_m=250.0, seed=21)
    dataset = WorkloadBuilder(network, seed=22).build(
        num_routes=10, trajectories_per_direction=4, num_queries=8
    )

    seed = GeodabConfig(normalization_depth=28, k=3, t=4)
    print(
        f"Seed configuration: depth={seed.normalization_depth}, "
        f"k={seed.k}, t={seed.t}\n"
    )
    print("Hill climbing (each evaluation builds and queries an index)...")
    result = hill_climb(dataset, seed=seed, max_steps=6)

    rows = [
        [
            step_number,
            step.config.normalization_depth,
            step.config.k,
            step.config.t,
            step.score,
        ]
        for step_number, step in enumerate(result.steps)
    ]
    print_table(
        "Hill-climbing trajectory (score = mean average precision)",
        ["step", "depth", "k", "t", "MAP"],
        rows,
    )
    best = result.best.config
    print(
        f"Converged after {result.evaluations} index builds to "
        f"depth={best.normalization_depth}, k={best.k}, t={best.t} "
        f"(MAP {result.best.score:.3f})."
    )
    print(
        "The paper's hand-tuned configuration is depth=36, k=6, t=12; the\n"
        "search heads the same way — deeper-than-seed cells and wider noise\n"
        "thresholds — without any manual sweeps."
    )


if __name__ == "__main__":
    main()
