"""The concurrent query-serving tier, end to end.

Builds a sharded geodab index, wraps it in the thread-safe
:class:`IndexService` (worker-pool shard fan-out + result cache), starts
the JSON HTTP API on an ephemeral port, and exercises every endpoint the
way an external client would — including a cache hit and a write that
invalidates it.

Run with:  python examples/query_service.py
"""

import json
import urllib.request

from repro.bench.report import print_table
from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core import GeodabConfig
from repro.normalize import standard_normalizer
from repro.roadnet import generate_city_network
from repro.service import IndexService, QueryExecutor, start_server
from repro.workload import WorkloadBuilder


def call(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    print("Building workload and sharded index (8 shards, 2 nodes)...")
    network = generate_city_network(half_side_m=2_500.0, spacing_m=250.0, seed=7)
    dataset = WorkloadBuilder(network, seed=9).build(
        num_routes=6, trajectories_per_direction=4, num_queries=4
    )
    # Hash placement: a single city occupies one sliver of the z-order
    # curve, so range placement would put every posting on one shard and
    # the fan-out executor would have nothing to fan out.
    index = ShardedGeodabIndex(
        GeodabConfig(),
        ShardingConfig(num_shards=8, num_nodes=2, placement="hash"),
        normalizer=standard_normalizer(),
        store_points=True,  # retain raw trajectories for exact re-ranking
    )
    service = IndexService(index, executor=QueryExecutor(index, pool_size=4))
    server = start_server(service)
    print(f"service listening at {server.url}\n")

    # --- Ingest over HTTP ----------------------------------------------
    body = {
        "trajectories": [
            {
                "id": record.trajectory_id,
                "points": [[p.lat, p.lon] for p in record.points],
            }
            for record in dataset.records
        ]
    }
    ingested = call(server.url, "POST", "/trajectories", body)
    print(f"ingested {ingested['ingested']} trajectories "
          f"(generation {ingested['generation']})")

    # --- Query twice: miss then cache hit ------------------------------
    # Requests carry a structured QuerySpec; the old flat
    # {"limit": ..., "max_distance": ...} shape still parses but is
    # answered with a "Deprecation: true" header.
    query = dataset.queries[0]
    payload = {
        "points": [[p.lat, p.lon] for p in query.points],
        "spec": {"mode": "approx", "limit": 5},
    }
    first = call(server.url, "POST", "/query", payload)
    second = call(server.url, "POST", "/query", payload)
    rows = [
        [rank, hit["id"], hit["distance"],
         "yes" if hit["id"] in query.relevant_ids else ""]
        for rank, hit in enumerate(first["results"], start=1)
    ]
    print_table(
        f"results for {query.query_id} "
        f"(first: cached={first['cached']}, repeat: cached={second['cached']})",
        ["rank", "trajectory", "distance", "relevant"],
        rows,
    )

    # --- A write invalidates the cached result -------------------------
    victim = first["results"][0]["id"]
    call(server.url, "DELETE", f"/trajectories/{victim}")
    third = call(server.url, "POST", "/query", payload)
    print(f"after deleting {victim}: cached={third['cached']}, "
          f"top hit is now {third['results'][0]['id']}")

    # --- Tiered exact search --------------------------------------------
    # Jaccard retrieval collects limit*overfetch candidates, then the
    # exact metric (here banded DTW) re-ranks them on the raw points.
    exact = call(server.url, "POST", "/query", {
        "points": payload["points"],
        "spec": {"mode": "exact_knn", "metric": "dtw", "limit": 3,
                 "overfetch": 6, "band": 16},
    })
    print("exact_knn (DTW) top hits: " + ", ".join(
        f"{hit['id']}@{hit['distance']:.1f}m" for hit in exact["results"]
    ))

    # --- Service vitals -------------------------------------------------
    stats = call(server.url, "GET", "/stats")
    metrics = stats["metrics"]
    print(f"\nservice stats: {stats['index']}")
    print(f"qps={metrics['qps']}, p95={metrics['latency_p95_ms']}ms, "
          f"cache hit rate={metrics['cache_hit_rate']}, "
          f"result-cache invalidations="
          f"{stats['result_cache']['invalidations']}")

    server.shutdown()
    service.close()


if __name__ == "__main__":
    main()
