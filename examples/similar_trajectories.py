"""Finding similar trajectories in a dense synthetic London dataset.

Reproduces the paper's evaluation pipeline end to end (Section VI):
generate a dense workload on a road network, index it with geodabs and
with the geohash baseline, run queries with ground truth, and compare
precision/recall and AUC.

Run with:  python examples/similar_trajectories.py
"""

from repro.bench.report import print_table
from repro.core import GeodabConfig, GeodabIndex, GeohashIndex
from repro.ir import (
    auc,
    average_pr_curve,
    average_precision,
    precision_recall_curve,
    roc_curve,
)
from repro.normalize import standard_normalizer
from repro.roadnet import generate_city_network
from repro.workload import WorkloadBuilder


def main() -> None:
    # 1. A ~50 km^2 city around central London (scaled-down Section VI-A1).
    print("Generating road network and dense trajectory workload...")
    network = generate_city_network(half_side_m=3_500.0, spacing_m=250.0, seed=1)
    builder = WorkloadBuilder(network, seed=2)
    dataset = builder.build(
        num_routes=20, trajectories_per_direction=10, num_queries=10
    )
    print(
        f"  {len(dataset)} trajectories over 20 routes, "
        f"{dataset.total_points():,} GPS points, "
        f"{len(dataset.queries)} queries with ground truth"
    )

    # 2. Index with geodabs and with the direction-blind baseline.
    normalizer = standard_normalizer()
    geodab_index = GeodabIndex(GeodabConfig(), normalizer=normalizer)
    geohash_index = GeohashIndex(36, normalizer=normalizer)
    for record in dataset.records:
        geodab_index.add(record.trajectory_id, record.points)
        geohash_index.add(record.trajectory_id, record.points)
    stats = geodab_index.stats()
    print(
        f"  geodab index: {stats.terms:,} terms, {stats.postings:,} postings"
    )

    # 3. Evaluate ranked retrieval on both indexes.
    curves = {"geodabs": [], "geohash": []}
    aucs = {"geodabs": [], "geohash": []}
    maps = {"geodabs": [], "geohash": []}
    for query in dataset.queries:
        for name, index in (("geodabs", geodab_index), ("geohash", geohash_index)):
            ranked = [r.trajectory_id for r in index.query(query.points)]
            if not ranked:
                continue
            curves[name].append(precision_recall_curve(ranked, query.relevant_ids))
            fpr, tpr = roc_curve(ranked, query.relevant_ids, len(dataset))
            aucs[name].append(auc(fpr, tpr))
            maps[name].append(average_precision(ranked, query.relevant_ids))

    levels = tuple(i / 5 for i in range(6))
    rows = []
    for name in ("geodabs", "geohash"):
        avg = average_pr_curve(curves[name], levels)
        rows.append(
            [name]
            + [p.precision for p in avg]
            + [
                sum(aucs[name]) / len(aucs[name]),
                sum(maps[name]) / len(maps[name]),
            ]
        )
    print_table(
        "Ranked retrieval: geodabs vs geohash (cf. paper Figures 12-13)",
        ["index"] + [f"P@R={lv:.1f}" for lv in levels] + ["AUC", "MAP"],
        rows,
    )

    # 4. Show one concrete query.
    query = dataset.queries[0]
    print(f"Example query {query.query_id} (route {query.route_id}, "
          f"{query.direction}); relevant: {len(query.relevant_ids)} records")
    for result in geodab_index.query(query.points, limit=8):
        marker = "*" if result.trajectory_id in query.relevant_ids else " "
        print(
            f"  {marker} {result.trajectory_id:<14} "
            f"distance={result.distance:.3f}"
        )
    print("  (* = ground-truth relevant)")


if __name__ == "__main__":
    main()
