"""Discovering common motifs in pairs of trajectories.

Two commuters share a stretch of their daily routes.  This example finds
that common motif twice — exactly with the BTM baseline (discrete Frechet
distance over all sub-trajectory pairs, Section VI-C) and approximately
with geodab fingerprint windows — and compares cost and agreement.

Run with:  python examples/motif_discovery.py
"""

import time

from repro.baselines import btm_motif
from repro.core import GeodabConfig, Fingerprinter, find_common_motif
from repro.geo import Point, destination, path_length
from repro.normalize import standard_normalizer
from repro.workload import GaussianGpsNoise
from random import Random


def commuter_trajectories():
    """Two routes sharing a ~1.2 km middle segment, with GPS noise."""
    london = Point(51.5074, -0.1278)
    shared = [london]
    for _ in range(120):  # ~1.2 km east
        shared.append(destination(shared[-1], 90.0, 10.0))

    # Commuter A approaches from the south, leaves north.
    a = [destination(shared[0], 180.0, 600.0)]
    while a[-1].distance_to(shared[0]) > 12.0:
        a.append(destination(a[-1], 0.0, 10.0))
    a += shared
    tail = [destination(shared[-1], 0.0, 10.0)]
    for _ in range(59):
        tail.append(destination(tail[-1], 0.0, 10.0))
    a += tail

    # Commuter B approaches from the west, leaves south-east.
    b = [destination(shared[0], 270.0, 500.0)]
    while b[-1].distance_to(shared[0]) > 12.0:
        b.append(destination(b[-1], 90.0, 10.0))
    b += shared
    tail = [destination(shared[-1], 135.0, 10.0)]
    for _ in range(49):
        tail.append(destination(tail[-1], 135.0, 10.0))
    b += tail

    rng = Random(7)
    noise = GaussianGpsNoise(8.0, rng)
    return noise.apply_all(a), noise.apply_all(b)


def main() -> None:
    trajectory_a, trajectory_b = commuter_trajectories()
    print(
        f"Commuter A: {len(trajectory_a)} points, "
        f"{path_length(trajectory_a):,.0f} m"
    )
    print(
        f"Commuter B: {len(trajectory_b)} points, "
        f"{path_length(trajectory_b):,.0f} m\n"
    )

    # --- Exact: BTM (bounded DFD search over all window pairs) ----------
    motif_points = 100  # ~1 km of 10 m steps
    start = time.perf_counter()
    exact = btm_motif(trajectory_a, trajectory_b, motif_points)
    exact_ms = (time.perf_counter() - start) * 1000.0
    print("BTM (exact, discrete Frechet):")
    print(
        f"  motif at A[{exact.start_i}:{exact.start_i + motif_points}] x "
        f"B[{exact.start_j}:{exact.start_j + motif_points}], "
        f"DFD = {exact.distance:.0f} m"
    )
    print(
        f"  {exact.evaluated} exact DFD evaluations, {exact.pruned} pruned, "
        f"{exact_ms:.0f} ms\n"
    )

    # --- Approximate: geodab fingerprint windows -------------------------
    config = GeodabConfig(k=3, t=6)
    normalizer = standard_normalizer(smoothing_window=5)
    norm_a = normalizer(trajectory_a)
    norm_b = normalizer(trajectory_b)
    start = time.perf_counter()
    approx = find_common_motif(norm_a, norm_b, length_m=1_000.0, fingerprinter=config)
    approx_ms = (time.perf_counter() - start) * 1000.0
    assert approx is not None, "no motif found - trajectories too short?"
    print("Geodabs (approximate, Jaccard over fingerprint windows):")
    print(
        f"  motif spans cells A[{approx.span_i[0]}:{approx.span_i[1]}] x "
        f"B[{approx.span_j[0]}:{approx.span_j[1]}], "
        f"window jaccard = {approx.jaccard:.2f}"
    )
    print(f"  {approx_ms:.0f} ms ({exact_ms / max(approx_ms, 0.001):.0f}x faster)\n")

    # --- Agreement check -------------------------------------------------
    fingerprinter = Fingerprinter(config)
    density = len(fingerprinter.fingerprint(norm_a).selections) / path_length(norm_a)
    print(
        "Both methods localize the shared segment; the geodab spans are "
        "expressed over\nnormalized cells "
        f"(~{1 / max(density, 1e-9):.0f} m per fingerprint), the BTM spans "
        "over raw points."
    )


if __name__ == "__main__":
    main()
